#include "vmpi/cart.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/error.hpp"

namespace minivpic::vmpi {
namespace {

TEST(DimsCreate, ProductMatches) {
  for (int n : {1, 2, 3, 4, 6, 8, 12, 16, 17, 24, 64, 100, 1024}) {
    const auto d = dims_create(n);
    EXPECT_EQ(d[0] * d[1] * d[2], n) << "n=" << n;
  }
}

TEST(DimsCreate, NearCubic) {
  const auto d = dims_create(64);
  EXPECT_EQ(d[0], 4);
  EXPECT_EQ(d[1], 4);
  EXPECT_EQ(d[2], 4);
  const auto d8 = dims_create(8);
  EXPECT_EQ(d8[0] * d8[1] * d8[2], 8);
  EXPECT_LE(*std::max_element(d8.begin(), d8.end()), 2);
}

TEST(DimsCreate, HonorsHints) {
  const auto d = dims_create(12, {0, 3, 0});
  EXPECT_EQ(d[1], 3);
  EXPECT_EQ(d[0] * d[1] * d[2], 12);
}

TEST(DimsCreate, FullyHinted) {
  const auto d = dims_create(6, {1, 2, 3});
  EXPECT_EQ(d, (std::array<int, 3>{1, 2, 3}));
}

TEST(DimsCreate, BadHintThrows) {
  EXPECT_THROW(dims_create(7, {2, 0, 0}), Error);   // 2 does not divide 7
  EXPECT_THROW(dims_create(6, {2, 2, 2}), Error);   // product mismatch
  EXPECT_THROW(dims_create(0), Error);
}

TEST(DimsCreate, PrimeRankCount) {
  const auto d = dims_create(17);
  EXPECT_EQ(d[0] * d[1] * d[2], 17);
}

TEST(CartTopologyTest, CoordsRoundTrip) {
  const CartTopology topo({3, 4, 5}, {true, true, true});
  EXPECT_EQ(topo.nranks(), 60);
  for (int r = 0; r < topo.nranks(); ++r)
    EXPECT_EQ(topo.rank_of(topo.coords_of(r)), r);
}

TEST(CartTopologyTest, XFastestLayout) {
  const CartTopology topo({4, 3, 2}, {false, false, false});
  EXPECT_EQ(topo.coords_of(0), (std::array<int, 3>{0, 0, 0}));
  EXPECT_EQ(topo.coords_of(1), (std::array<int, 3>{1, 0, 0}));
  EXPECT_EQ(topo.coords_of(4), (std::array<int, 3>{0, 1, 0}));
  EXPECT_EQ(topo.coords_of(12), (std::array<int, 3>{0, 0, 1}));
}

TEST(CartTopologyTest, PeriodicWrap) {
  const CartTopology topo({4, 1, 1}, {true, false, false});
  EXPECT_EQ(topo.neighbor(0, 0, -1), 3);
  EXPECT_EQ(topo.neighbor(3, 0, +1), 0);
}

TEST(CartTopologyTest, NonPeriodicEdge) {
  const CartTopology topo({4, 1, 1}, {false, false, false});
  EXPECT_EQ(topo.neighbor(0, 0, -1), CartTopology::kNoRank);
  EXPECT_EQ(topo.neighbor(3, 0, +1), CartTopology::kNoRank);
  EXPECT_EQ(topo.neighbor(1, 0, +1), 2);
}

TEST(CartTopologyTest, MixedPeriodicity) {
  const CartTopology topo({2, 2, 2}, {true, false, true});
  // y edges closed.
  EXPECT_EQ(topo.neighbor(0, 1, -1), CartTopology::kNoRank);
  // x and z wrap.
  EXPECT_NE(topo.neighbor(0, 0, -1), CartTopology::kNoRank);
  EXPECT_NE(topo.neighbor(0, 2, -1), CartTopology::kNoRank);
}

TEST(CartTopologyTest, NeighborsSymmetric) {
  const CartTopology topo({3, 3, 3}, {true, true, true});
  for (int r = 0; r < topo.nranks(); ++r) {
    for (int axis = 0; axis < 3; ++axis) {
      const int fwd = topo.neighbor(r, axis, +1);
      ASSERT_NE(fwd, CartTopology::kNoRank);
      EXPECT_EQ(topo.neighbor(fwd, axis, -1), r);
    }
  }
}

TEST(CartTopologyTest, SingleRankSelfNeighbor) {
  const CartTopology topo({1, 1, 1}, {true, true, true});
  for (int axis = 0; axis < 3; ++axis) {
    EXPECT_EQ(topo.neighbor(0, axis, +1), 0);
    EXPECT_EQ(topo.neighbor(0, axis, -1), 0);
  }
}

TEST(CartTopologyTest, InvalidArgsThrow) {
  const CartTopology topo({2, 2, 2}, {true, true, true});
  EXPECT_THROW(topo.coords_of(-1), Error);
  EXPECT_THROW(topo.coords_of(8), Error);
  EXPECT_THROW(topo.neighbor(0, 3, 1), Error);
  EXPECT_THROW(topo.neighbor(0, 0, 2), Error);
  EXPECT_THROW(CartTopology({0, 1, 1}, {true, true, true}), Error);
}

TEST(CartTopologyTest, AllRanksDistinct) {
  const CartTopology topo({2, 3, 4}, {false, false, false});
  std::set<int> ranks;
  for (int x = 0; x < 2; ++x)
    for (int y = 0; y < 3; ++y)
      for (int z = 0; z < 4; ++z) ranks.insert(topo.rank_of({x, y, z}));
  EXPECT_EQ(ranks.size(), 24u);
}

}  // namespace
}  // namespace minivpic::vmpi
