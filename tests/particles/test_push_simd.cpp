// Scalar-vs-SIMD equivalence for the particle advance, under the same
// determinism contract as the pipeline layer (push.hpp): exact push/
// crossing/absorb/reflect/reflux counters, trajectories to <= 4 ULP, J
// bit-exact whenever the per-cell add order matches the serial sum. The
// SIMD kernels mirror the scalar operation sequence, so in a 1-pipeline
// advance even the dense J is expected bit-identical — the sparse/warm
// tests assert that stronger property outright, the pipelined test falls
// back to the documented rounding-level agreement.
//
// Every test runs for each kernel the build/host supports (sse always;
// avx2/avx512 when compiled in and the CPU has them), so the same binary
// covers whatever the CI arch matrix compiles.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "harness.hpp"
#include "particles/kernel.hpp"
#include "particles/push_simd.hpp"
#include "util/error.hpp"
#include "util/pipeline.hpp"
#include "util/rng.hpp"

namespace minivpic::particles {
namespace {

using testing::MiniPic;
using testing::cube_grid;

// ---- registry -------------------------------------------------------------

TEST(KernelRegistryTest, ParseAndNameRoundTrip) {
  for (Kernel k : {Kernel::kScalar, Kernel::kSse, Kernel::kAvx2,
                   Kernel::kAvx512, Kernel::kAuto})
    EXPECT_EQ(parse_kernel(kernel_name(k)), k);
  EXPECT_THROW(parse_kernel("avx1024"), Error);
  EXPECT_THROW(parse_kernel(""), Error);
}

TEST(KernelRegistryTest, LaneWidths) {
  EXPECT_EQ(kernel_lane_width(Kernel::kScalar), 1);
  EXPECT_EQ(kernel_lane_width(Kernel::kSse), 4);
  EXPECT_EQ(kernel_lane_width(Kernel::kAvx2), 8);
  EXPECT_EQ(kernel_lane_width(Kernel::kAvx512), 16);
  EXPECT_THROW(kernel_lane_width(Kernel::kAuto), Error);
}

TEST(KernelRegistryTest, ScalarAndSseAlwaysAvailable) {
  EXPECT_TRUE(kernel_available(Kernel::kScalar));
  EXPECT_TRUE(kernel_available(Kernel::kSse));
  const auto ks = available_kernels();
  ASSERT_GE(ks.size(), 2u);
  EXPECT_EQ(ks[0], Kernel::kScalar);
  EXPECT_EQ(ks[1], Kernel::kSse);
}

TEST(KernelRegistryTest, AutoResolvesToWidestAvailable) {
  const Kernel r = resolve_kernel(Kernel::kAuto);
  EXPECT_NE(r, Kernel::kAuto);
  EXPECT_TRUE(kernel_available(r));
  for (Kernel k : available_kernels())
    EXPECT_LE(kernel_lane_width(k), kernel_lane_width(r));
}

TEST(KernelRegistryTest, ScalarHasNoSimdEntry) {
  EXPECT_EQ(simd_advance_entry(Kernel::kScalar), nullptr);
  EXPECT_EQ(simd_advance_entry(Kernel::kAuto), nullptr);
}

TEST(KernelRegistryTest, PusherValidatesKernelChoice) {
  MiniPic pic(cube_grid(4, 0.5));
  EXPECT_EQ(pic.pusher.kernel(), Kernel::kScalar);  // library default
  pic.pusher.set_kernel(Kernel::kAuto);
  EXPECT_NE(pic.pusher.kernel(), Kernel::kAuto);
  for (Kernel k : {Kernel::kSse, Kernel::kAvx2, Kernel::kAvx512}) {
    if (kernel_available(k)) {
      pic.pusher.set_kernel(k);
      EXPECT_EQ(pic.pusher.kernel(), k);
    } else {
      EXPECT_THROW(pic.pusher.set_kernel(k), Error);
    }
  }
}

// ---- equivalence helpers --------------------------------------------------

/// ULP distance between two floats (0 when bit-identical; huge for
/// NaN/opposite-infinity pairs so they always fail the <= 4 assert).
std::int64_t ulp_diff(float a, float b) {
  if (a == b) return 0;  // covers +0 vs -0
  if (std::isnan(a) || std::isnan(b)) return std::int64_t(1) << 40;
  const auto key = [](float x) {
    std::int32_t i;
    std::memcpy(&i, &x, 4);
    return i >= 0 ? std::int64_t(i) : std::int64_t(0x8000'0000LL) - i;
  };
  const std::int64_t d = key(a) - key(b);
  return d < 0 ? -d : d;
}

::testing::AssertionResult particles_match(const Species& a, const Species& b,
                                           std::int64_t max_ulp) {
  if (a.size() != b.size())
    return ::testing::AssertionFailure()
           << "sizes differ: " << a.size() << " vs " << b.size();
  for (std::size_t n = 0; n < a.size(); ++n) {
    if (a[n].i != b[n].i)
      return ::testing::AssertionFailure()
             << "particle " << n << " voxel " << a[n].i << " vs " << b[n].i;
    const float* pa = &a[n].dx;
    const float* pb = &b[n].dx;
    static const char* kField[8] = {"dx", "dy", "dz", "i",
                                    "ux", "uy", "uz", "w"};
    for (int c : {0, 1, 2, 4, 5, 6, 7}) {
      const std::int64_t d = ulp_diff(pa[c], pb[c]);
      if (d > max_ulp)
        return ::testing::AssertionFailure()
               << "particle " << n << " field " << kField[c] << ": " << pa[c]
               << " vs " << pb[c] << " (" << d << " ULP)";
    }
  }
  return ::testing::AssertionSuccess();
}

::testing::AssertionResult j_identical(const grid::FieldArray& a,
                                       const grid::FieldArray& b) {
  const auto& g = a.grid();
  for (int k = 0; k <= g.nz() + 1; ++k)
    for (int j = 0; j <= g.ny() + 1; ++j)
      for (int i = 0; i <= g.nx() + 1; ++i) {
        if (a.jfx(i, j, k) != b.jfx(i, j, k) ||
            a.jfy(i, j, k) != b.jfy(i, j, k) ||
            a.jfz(i, j, k) != b.jfz(i, j, k))
          return ::testing::AssertionFailure()
                 << "J differs at (" << i << "," << j << "," << k << "): ("
                 << a.jfx(i, j, k) << "," << a.jfy(i, j, k) << ","
                 << a.jfz(i, j, k) << ") vs (" << b.jfx(i, j, k) << ","
                 << b.jfy(i, j, k) << "," << b.jfz(i, j, k) << ")";
      }
  return ::testing::AssertionSuccess();
}

/// J agreement to `rel` x grid-wide max |J| (see test_pipeline_push.cpp for
/// why the tolerance is global, not per cell).
::testing::AssertionResult j_close(const grid::FieldArray& a,
                                   const grid::FieldArray& b, double rel) {
  const auto& g = a.grid();
  double max_abs = 0;
  for (int k = 0; k <= g.nz() + 1; ++k)
    for (int j = 0; j <= g.ny() + 1; ++j)
      for (int i = 0; i <= g.nx() + 1; ++i)
        max_abs = std::max({max_abs, std::abs(double(a.jfx(i, j, k))),
                            std::abs(double(a.jfy(i, j, k))),
                            std::abs(double(a.jfz(i, j, k)))});
  const double tol = rel * std::max(max_abs, 1e-12);
  for (int k = 0; k <= g.nz() + 1; ++k)
    for (int j = 0; j <= g.ny() + 1; ++j)
      for (int i = 0; i <= g.nx() + 1; ++i) {
        const double comps[3][2] = {{a.jfx(i, j, k), b.jfx(i, j, k)},
                                    {a.jfy(i, j, k), b.jfy(i, j, k)},
                                    {a.jfz(i, j, k), b.jfz(i, j, k)}};
        for (const auto& c : comps)
          if (std::abs(c[0] - c[1]) > tol)
            return ::testing::AssertionFailure()
                   << "J differs at (" << i << "," << j << "," << k
                   << "): " << c[0] << " vs " << c[1] << " (tol " << tol
                   << ")";
      }
  return ::testing::AssertionSuccess();
}

void expect_counters_eq(const Pusher::Result& s, const Pusher::Result& v,
                        int step) {
  EXPECT_EQ(s.pushed, v.pushed) << "step " << step;
  EXPECT_EQ(s.crossings, v.crossings) << "step " << step;
  EXPECT_EQ(s.absorbed, v.absorbed) << "step " << step;
  EXPECT_EQ(s.reflected, v.reflected) << "step " << step;
  EXPECT_EQ(s.refluxed, v.refluxed) << "step " << step;
}

// ---- scalar-vs-SIMD equivalence, one suite per available kernel -----------

class SimdEquivalenceTest : public ::testing::TestWithParam<Kernel> {};

std::vector<Kernel> simd_kernels() {
  std::vector<Kernel> ks;
  for (Kernel k : available_kernels())
    if (k != Kernel::kScalar) ks.push_back(k);
  return ks;
}

INSTANTIATE_TEST_SUITE_P(
    AvailableKernels, SimdEquivalenceTest, ::testing::ValuesIn(simd_kernels()),
    [](const ::testing::TestParamInfo<Kernel>& info) {
      return std::string(kernel_name(info.param));
    });

TEST_P(SimdEquivalenceTest, WarmInCellMatchesScalar) {
  // The acceptance workload: warm plasma, most lanes stay in-cell. The
  // 1-pipeline deposit order matches serial exactly, so J must be
  // bit-identical even though cells collect many deposits.
  MiniPic ref(cube_grid(8, 0.5));
  MiniPic vec(cube_grid(8, 0.5));
  vec.pusher.set_kernel(GetParam());
  Species a("e", -1.0, 1.0), b("e", -1.0, 1.0);
  LoadConfig cfg;
  cfg.ppc = 12;
  cfg.uth = 0.05;
  load_uniform(a, ref.grid, cfg);
  load_uniform(b, vec.grid, cfg);
  for (int s = 0; s < 3; ++s) {
    const auto rs = ref.step({&a});
    const auto rv = vec.step({&b});
    expect_counters_eq(rs, rv, s);
    ASSERT_TRUE(j_identical(ref.fields, vec.fields)) << "step " << s;
  }
  ASSERT_TRUE(particles_match(a, b, 4));
}

TEST_P(SimdEquivalenceTest, RemainderBatchMatchesScalar) {
  // Slice sizes that are not a lane-width multiple: the tail runs the
  // scalar remainder path. Also covers n < W (whole slice is remainder).
  const int W = kernel_lane_width(GetParam());
  for (const int count : {3, 2 * W + 3, W + 1}) {
    MiniPic ref(cube_grid(6, 0.5));
    MiniPic vec(cube_grid(6, 0.5));
    vec.pusher.set_kernel(GetParam());
    Species a("e", -1.0, 1.0), b("e", -1.0, 1.0);
    Rng rng(97);
    for (int n = 0; n < count; ++n) {
      Particle p;
      p.i = ref.grid.voxel(1 + n % 6, 1 + (n / 6) % 6, 1 + (n / 36) % 6);
      p.dx = float(rng.normal(0.0, 0.4));
      p.dy = float(rng.normal(0.0, 0.4));
      p.dz = float(rng.normal(0.0, 0.4));
      p.ux = float(rng.normal(0.0, 0.2));
      p.uy = float(rng.normal(0.0, 0.2));
      p.uz = float(rng.normal(0.0, 0.2));
      p.w = 0.8f;
      a.add(p);
      b.add(p);
    }
    for (int s = 0; s < 2; ++s) {
      const auto rs = ref.step({&a});
      const auto rv = vec.step({&b});
      expect_counters_eq(rs, rv, s);
      ASSERT_TRUE(j_identical(ref.fields, vec.fields))
          << "count " << count << " step " << s;
    }
    ASSERT_TRUE(particles_match(a, b, 4)) << "count " << count;
  }
}

TEST_P(SimdEquivalenceTest, AllLanesCrossingMatchesScalar) {
  // Every lane takes the move_p spill path (in_bits == 0): fast particles
  // launched from cell centers cross at least one face per step.
  MiniPic ref(cube_grid(8, 0.5));
  MiniPic vec(cube_grid(8, 0.5));
  vec.pusher.set_kernel(GetParam());
  const int W = kernel_lane_width(GetParam());
  const int count = 2 * W + W / 2;  // full batches + remainder, all crossing
  Species a("e", -1.0, 1.0), b("e", -1.0, 1.0);
  for (int n = 0; n < count; ++n) {
    Particle p;
    p.i = ref.grid.voxel(1 + n % 8, 1 + (n / 8) % 8, 1 + (n / 64) % 8);
    p.ux = (n % 2 != 0) ? 1.0f : -1.0f;
    p.uy = 1.0f;
    p.uz = (n % 3 != 0) ? -1.0f : 1.0f;
    p.w = 1.0f;
    a.add(p);
    b.add(p);
  }
  std::int64_t crossings = 0;
  for (int s = 0; s < 3; ++s) {
    const auto rs = ref.step({&a});
    const auto rv = vec.step({&b});
    expect_counters_eq(rs, rv, s);
    crossings += rs.crossings;
    ASSERT_TRUE(j_identical(ref.fields, vec.fields)) << "step " << s;
  }
  EXPECT_GE(crossings, std::int64_t(count))
      << "test is vacuous: lanes did not cross";
  ASSERT_TRUE(particles_match(a, b, 4));
}

TEST_P(SimdEquivalenceTest, AbsorbingWallMatchesScalar) {
  // Dead-particle splicing: emigrant/absorbed lanes are recorded in lane
  // order = particle order, so the removal sequence — and therefore the
  // surviving particle order — matches scalar exactly.
  auto gg = cube_grid(8, 0.5);
  gg.boundary = grid::lpi_boundaries();
  MiniPic ref(gg, lpi_particles());
  MiniPic vec(gg, lpi_particles());
  vec.pusher.set_kernel(GetParam());
  Species a("e", -1.0, 1.0), b("e", -1.0, 1.0);
  LoadConfig cfg;
  cfg.ppc = 8;
  cfg.uth = 0.3;  // hot: steady wall losses
  load_uniform(a, ref.grid, cfg);
  load_uniform(b, vec.grid, cfg);
  std::int64_t absorbed = 0;
  for (int s = 0; s < 15; ++s) {
    const auto rs = ref.step({&a});
    const auto rv = vec.step({&b});
    expect_counters_eq(rs, rv, s);
    absorbed += rs.absorbed;
  }
  EXPECT_GT(absorbed, 0) << "walls never hit — test is vacuous";
  ASSERT_TRUE(particles_match(a, b, 4));
}

TEST_P(SimdEquivalenceTest, RefluxDrawsMatchScalarExactly) {
  // Reflux re-emission consumes RNG draws. The SIMD spill handles crossing
  // lanes in particle order from the same per-pipeline stream, so draw
  // sequences — and refluxed momenta — are identical to scalar, not just
  // statistically alike.
  auto gg = cube_grid(8, 0.5);
  gg.boundary = grid::lpi_boundaries();
  ParticleBcSpec bc = periodic_particles();
  bc[grid::kFaceXLo] = ParticleBc::kReflux;
  bc[grid::kFaceXHi] = ParticleBc::kReflux;
  MiniPic ref(gg, bc);
  MiniPic vec(gg, bc);
  vec.pusher.set_kernel(GetParam());
  const double uth = 0.3;
  ref.pusher.set_reflux_uth(uth);
  vec.pusher.set_reflux_uth(uth);
  Species a("e", -1.0, 1.0), b("e", -1.0, 1.0);
  LoadConfig cfg;
  cfg.ppc = 8;
  cfg.uth = uth;
  load_uniform(a, ref.grid, cfg);
  load_uniform(b, vec.grid, cfg);
  std::int64_t refluxed = 0;
  for (int s = 0; s < 10; ++s) {
    const auto rs = ref.step({&a});
    const auto rv = vec.step({&b});
    expect_counters_eq(rs, rv, s);
    refluxed += rs.refluxed;
  }
  EXPECT_GT(refluxed, 0) << "walls never hit — test is vacuous";
  ASSERT_TRUE(particles_match(a, b, 4));
}

TEST_P(SimdEquivalenceTest, PipelinedSimdMatchesSerialScalar) {
  // Kernel x pipeline composition (also the TSan target): N pipelines each
  // running the SIMD kernel over a contiguous slice vs the serial scalar
  // reference. Slice boundaries change which particles fall into remainder
  // batches, and the block fold reorders per-cell adds — so this asserts
  // the documented contract (exact counters, rounding-level J), not bit
  // equality.
  struct PipelinePic {
    PipelinePic(const grid::GlobalGrid& gg, int n)
        : pool(n), grid(gg), fields(grid), halo(grid, nullptr),
          solver(grid, &halo), interp(grid), acc(grid, n),
          pusher(grid, periodic_particles()) {
      solver.boundary().capture(fields);
    }
    Pusher::Result step(Species& sp) {
      interp.load(fields);
      acc.clear();
      fields.clear_sources();
      auto r = pusher.advance(sp, interp, acc, &pool);
      migrate_particles(std::move(r.emigrants), sp, pusher, acc, grid,
                        nullptr);
      acc.reduce();
      acc.unload(fields);
      accumulate_rho(sp, fields);
      halo.reduce_sources(fields);
      solver.advance_b(fields, 0.5);
      solver.advance_e(fields);
      solver.advance_b(fields, 0.5);
      return r;
    }
    Pipeline pool;
    grid::LocalGrid grid;
    grid::FieldArray fields;
    grid::Halo halo;
    field::FieldSolver solver;
    InterpolatorArray interp;
    AccumulatorArray acc;
    Pusher pusher;
  };

  MiniPic ref(cube_grid(8, 0.5));
  PipelinePic vec(cube_grid(8, 0.5), 3);
  vec.pusher.set_kernel(GetParam());
  Species a("e", -1.0, 1.0), b("e", -1.0, 1.0);
  LoadConfig cfg;
  cfg.ppc = 12;
  cfg.uth = 0.1;
  load_uniform(a, ref.grid, cfg);
  load_uniform(b, vec.grid, cfg);
  for (int s = 0; s < 4; ++s) {
    const auto rs = ref.step({&a});
    const auto rv = vec.step(b);
    EXPECT_EQ(rs.pushed, rv.pushed) << "step " << s;
    EXPECT_EQ(rs.crossings, rv.crossings) << "step " << s;
    ASSERT_TRUE(j_close(ref.fields, vec.fields, 1e-4)) << "step " << s;
  }
  EXPECT_EQ(a.size(), b.size());
}

}  // namespace
}  // namespace minivpic::particles
