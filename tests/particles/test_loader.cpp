#include "particles/loader.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/error.hpp"

namespace minivpic::particles {
namespace {

grid::GlobalGrid cube(int n, double h = 0.5) {
  grid::GlobalGrid g;
  g.nx = g.ny = g.nz = n;
  g.dx = g.dy = g.dz = h;
  return g;
}

TEST(LoaderTest, CountAndWeights) {
  const grid::LocalGrid g(cube(4));
  Species sp("e", -1.0, 1.0);
  LoadConfig cfg;
  cfg.ppc = 8;
  cfg.density = 1.0;
  const auto n = load_uniform(sp, g, cfg);
  EXPECT_EQ(n, 8u * 64u);
  EXPECT_EQ(sp.size(), n);
  // Each weight = density * dV / ppc.
  const float expect_w = float(0.125 / 8.0);
  for (const Particle& p : sp.particles()) EXPECT_FLOAT_EQ(p.w, expect_w);
  // Total charge = -density * volume.
  EXPECT_NEAR(sp.charge(), -1.0 * 64 * 0.125, 1e-4);
}

TEST(LoaderTest, AllParticlesInInterior) {
  const grid::LocalGrid g(cube(4));
  Species sp("e", -1.0, 1.0);
  LoadConfig cfg;
  cfg.ppc = 4;
  load_uniform(sp, g, cfg);
  for (const Particle& p : sp.particles()) {
    const auto c = g.voxel_coords(p.i);
    EXPECT_TRUE(g.is_interior(c[0], c[1], c[2]));
    EXPECT_LE(std::abs(p.dx), 1.0f);
    EXPECT_LE(std::abs(p.dy), 1.0f);
    EXPECT_LE(std::abs(p.dz), 1.0f);
  }
}

TEST(LoaderTest, Deterministic) {
  const grid::LocalGrid g(cube(4));
  Species a("e", -1.0, 1.0), b("e", -1.0, 1.0);
  LoadConfig cfg;
  cfg.ppc = 4;
  cfg.uth = 0.1;
  load_uniform(a, g, cfg);
  load_uniform(b, g, cfg);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t n = 0; n < a.size(); ++n) {
    EXPECT_EQ(a[n].dx, b[n].dx);
    EXPECT_EQ(a[n].ux, b[n].ux);
  }
}

TEST(LoaderTest, SeedChangesDraws) {
  const grid::LocalGrid g(cube(4));
  Species a("e", -1.0, 1.0), b("e", -1.0, 1.0);
  LoadConfig cfg;
  cfg.ppc = 4;
  cfg.uth = 0.1;
  load_uniform(a, g, cfg);
  cfg.seed = 999;
  load_uniform(b, g, cfg);
  int same = 0;
  for (std::size_t n = 0; n < a.size(); ++n) same += (a[n].dx == b[n].dx);
  EXPECT_LT(same, int(a.size()) / 10);
}

TEST(LoaderTest, SpeciesSharePositionsNotMomenta) {
  const grid::LocalGrid g(cube(4));
  Species e("electron", -1.0, 1.0), ion("ion", 1.0, 1836.0);
  LoadConfig cfg;
  cfg.ppc = 4;
  cfg.uth = 0.1;
  load_uniform(e, g, cfg);
  load_uniform(ion, g, cfg);
  ASSERT_EQ(e.size(), ion.size());
  int same_u = 0;
  for (std::size_t n = 0; n < e.size(); ++n) {
    EXPECT_EQ(e[n].dx, ion[n].dx);
    EXPECT_EQ(e[n].dy, ion[n].dy);
    EXPECT_EQ(e[n].dz, ion[n].dz);
    EXPECT_EQ(e[n].i, ion[n].i);
    same_u += (e[n].ux == ion[n].ux);
  }
  EXPECT_LT(same_u, int(e.size()) / 10);
}

TEST(LoaderTest, DecompositionInvariant) {
  // The union of particles loaded by 2 ranks must equal the single-rank
  // load, cell by cell (keyed by global cell id and draw order).
  const auto gg = cube(4);
  const grid::LocalGrid whole(gg);
  Species all("e", -1.0, 1.0);
  LoadConfig cfg;
  cfg.ppc = 3;
  cfg.uth = 0.2;
  load_uniform(all, whole, cfg);

  const vmpi::CartTopology topo({2, 1, 1}, {true, true, true});
  Species part0("e", -1.0, 1.0), part1("e", -1.0, 1.0);
  const grid::LocalGrid g0(gg, topo, 0);
  const grid::LocalGrid g1(gg, topo, 1);
  load_uniform(part0, g0, cfg);
  load_uniform(part1, g1, cfg);
  ASSERT_EQ(part0.size() + part1.size(), all.size());

  // Collect (global position, momentum) multisets and compare sorted.
  auto collect = [](const Species& sp, const grid::LocalGrid& g) {
    std::vector<std::array<float, 6>> v;
    for (const Particle& p : sp.particles()) {
      const auto c = g.voxel_coords(p.i);
      v.push_back({float(g.node_x(c[0])) + p.dx, float(g.node_y(c[1])) + p.dy,
                   float(g.node_z(c[2])) + p.dz, p.ux, p.uy, p.uz});
    }
    return v;
  };
  auto va = collect(all, whole);
  auto v0 = collect(part0, g0);
  auto v1 = collect(part1, g1);
  v0.insert(v0.end(), v1.begin(), v1.end());
  std::sort(va.begin(), va.end());
  std::sort(v0.begin(), v0.end());
  EXPECT_EQ(va, v0);
}

TEST(LoaderTest, ThermalSpreadMatches) {
  const grid::LocalGrid g(cube(8));
  Species sp("e", -1.0, 1.0);
  LoadConfig cfg;
  cfg.ppc = 64;
  cfg.uth = 0.05;
  load_uniform(sp, g, cfg);
  double s2 = 0, mean = 0;
  for (const Particle& p : sp.particles()) {
    mean += p.ux;
    s2 += double(p.ux) * p.ux;
  }
  mean /= double(sp.size());
  s2 /= double(sp.size());
  EXPECT_NEAR(mean, 0.0, 3e-4);
  EXPECT_NEAR(std::sqrt(s2), 0.05, 1e-3);
}

TEST(LoaderTest, DriftApplied) {
  const grid::LocalGrid g(cube(4));
  Species sp("e", -1.0, 1.0);
  LoadConfig cfg;
  cfg.ppc = 16;
  cfg.uth = 0.01;
  cfg.drift = {0.5, -0.25, 0.0};
  load_uniform(sp, g, cfg);
  double mx = 0, my = 0;
  for (const Particle& p : sp.particles()) {
    mx += p.ux;
    my += p.uy;
  }
  mx /= double(sp.size());
  my /= double(sp.size());
  EXPECT_NEAR(mx, 0.5, 2e-3);
  EXPECT_NEAR(my, -0.25, 2e-3);
}

TEST(LoaderTest, ProfileScalesWeights) {
  const grid::LocalGrid g(cube(4));
  Species sp("e", -1.0, 1.0);
  LoadConfig cfg;
  cfg.ppc = 4;
  // Density step: zero in the lower half of x, 2x elsewhere.
  cfg.profile = [&](double x, double, double) { return x < 1.0 ? 0.0 : 2.0; };
  const auto n = load_uniform(sp, g, cfg);
  EXPECT_LT(n, 4u * 64u);  // zero-weight particles skipped
  EXPECT_GT(n, 0u);
  const float base_w = float(0.125 / 4.0);
  for (const Particle& p : sp.particles()) EXPECT_FLOAT_EQ(p.w, 2.0f * base_w);
}

TEST(LoaderTest, InvalidConfigRejected) {
  const grid::LocalGrid g(cube(4));
  Species sp("e", -1.0, 1.0);
  LoadConfig cfg;
  cfg.ppc = 0;
  EXPECT_THROW(load_uniform(sp, g, cfg), Error);
  cfg.ppc = 4;
  cfg.density = -1;
  EXPECT_THROW(load_uniform(sp, g, cfg), Error);
  cfg.density = 1;
  cfg.uth = -0.1;
  EXPECT_THROW(load_uniform(sp, g, cfg), Error);
  cfg.uth = 0;
  cfg.profile = [](double, double, double) { return -1.0; };
  EXPECT_THROW(load_uniform(sp, g, cfg), Error);
}

}  // namespace
}  // namespace minivpic::particles
