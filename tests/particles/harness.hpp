// Shared single-rank PIC stepping harness for the particle tests. The sim
// module provides the production loop; tests use this minimal replica so
// kernel behaviour is observable in isolation.
#pragma once

#include "field/solver.hpp"
#include "particles/accumulator.hpp"
#include "particles/interpolator.hpp"
#include "particles/loader.hpp"
#include "particles/migrate.hpp"
#include "particles/push.hpp"
#include "particles/rho.hpp"

namespace minivpic::particles::testing {

struct MiniPic {
  explicit MiniPic(const grid::GlobalGrid& gg,
                   const ParticleBcSpec& pbc = periodic_particles())
      : grid(gg),
        fields(grid),
        halo(grid, nullptr),
        solver(grid, &halo),
        interp(grid),
        acc(grid),
        pusher(grid, pbc) {
    solver.boundary().capture(fields);
  }

  /// One full PIC step for the given species set.
  Pusher::Result step(std::vector<Species*> species) {
    interp.load(fields);
    acc.clear();
    fields.clear_sources();
    Pusher::Result total;
    for (Species* sp : species) {
      auto r = pusher.advance(*sp, interp, acc);
      total.pushed += r.pushed;
      total.crossings += r.crossings;
      total.absorbed += r.absorbed;
      total.reflected += r.reflected;
      total.refluxed += r.refluxed;
      // Single rank: no emigrants possible.
      migrate_particles(std::move(r.emigrants), *sp, pusher, acc, grid,
                        nullptr);
    }
    acc.unload(fields);
    for (Species* sp : species) accumulate_rho(*sp, fields);
    halo.reduce_sources(fields);
    solver.advance_b(fields, 0.5);
    solver.advance_e(fields);
    solver.advance_b(fields, 0.5);
    return total;
  }

  grid::LocalGrid grid;
  grid::FieldArray fields;
  grid::Halo halo;
  field::FieldSolver solver;
  InterpolatorArray interp;
  AccumulatorArray acc;
  Pusher pusher;
};

/// Multi-rank variant driven from inside a vmpi rank function.
struct MultiPic {
  MultiPic(const grid::GlobalGrid& gg, const vmpi::CartTopology& topo,
           vmpi::Comm& c, const ParticleBcSpec& pbc = periodic_particles())
      : comm(&c),
        grid(gg, topo, c.rank()),
        fields(grid),
        halo(grid, &c),
        solver(grid, &halo),
        interp(grid),
        acc(grid),
        pusher(grid, pbc) {
    solver.boundary().capture(fields);
  }

  struct StepStats {
    Pusher::Result push;
    MigrateStats migrate;
  };

  StepStats step(std::vector<Species*> species) {
    interp.load(fields);
    acc.clear();
    fields.clear_sources();
    StepStats st;
    for (Species* sp : species) {
      auto r = pusher.advance(*sp, interp, acc);
      st.push.pushed += r.pushed;
      st.push.crossings += r.crossings;
      st.push.absorbed += r.absorbed;
      st.push.reflected += r.reflected;
      st.push.refluxed += r.refluxed;
      const auto m = migrate_particles(std::move(r.emigrants), *sp, pusher,
                                       acc, grid, comm);
      st.migrate.sent += m.sent;
      st.migrate.received += m.received;
      st.migrate.absorbed += m.absorbed;
      st.migrate.rounds = std::max(st.migrate.rounds, m.rounds);
    }
    acc.unload(fields);
    for (Species* sp : species) accumulate_rho(*sp, fields);
    halo.reduce_sources(fields);
    solver.advance_b(fields, 0.5);
    solver.advance_e(fields);
    solver.advance_b(fields, 0.5);
    return st;
  }

  vmpi::Comm* comm;
  grid::LocalGrid grid;
  grid::FieldArray fields;
  grid::Halo halo;
  field::FieldSolver solver;
  InterpolatorArray interp;
  AccumulatorArray acc;
  Pusher pusher;
};

inline grid::GlobalGrid cube_grid(int n, double h, double dt = 0) {
  grid::GlobalGrid g;
  g.nx = g.ny = g.nz = n;
  g.dx = g.dy = g.dz = h;
  g.dt = dt;
  return g;
}

}  // namespace minivpic::particles::testing
