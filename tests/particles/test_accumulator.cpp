#include "particles/accumulator.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "harness.hpp"

namespace minivpic::particles {
namespace {

using testing::MiniPic;
using testing::cube_grid;

TEST(AccumulatorTest, LayoutIsOneCacheLine) {
  EXPECT_EQ(sizeof(CellAccum), 64u);
}

TEST(AccumulatorTest, ClearZeroes) {
  const grid::LocalGrid g(cube_grid(4, 0.5));
  AccumulatorArray acc(g);
  acc.data()[5].jx[2] = 3.0f;
  acc.clear();
  EXPECT_EQ(acc.data()[5].jx[2], 0.0f);
}

/// Total current (sum of J over the mesh times cell volume) must equal
/// sum over particles of Q*v — independent of where particles sit or how
/// many cells they cross.
double total_jx(const grid::FieldArray& f) {
  const auto& g = f.grid();
  double s = 0;
  for (int k = 1; k <= g.nz(); ++k)
    for (int j = 1; j <= g.ny(); ++j)
      for (int i = 1; i <= g.nx(); ++i) s += f.jfx(i, j, k);
  return s * g.cell_volume();
}

TEST(AccumulatorTest, InCellCurrentMatchesQv) {
  MiniPic pic(cube_grid(8, 0.5));
  Species sp("e", -1.0, 1.0);
  Particle p;
  p.i = pic.grid.voxel(4, 4, 4);
  p.dx = -0.3f;
  p.dy = 0.2f;
  p.ux = 0.2f;  // slow: stays in cell
  p.w = 2.0f;
  sp.add(p);
  pic.step({&sp});
  const double v = 0.2 / std::sqrt(1.0 + 0.04);
  const double expect = -1.0 * 2.0 * v;  // q w v
  EXPECT_NEAR(total_jx(pic.fields), expect, 1e-5 * std::abs(expect));
}

TEST(AccumulatorTest, CrossingCurrentMatchesQv) {
  MiniPic pic(cube_grid(8, 0.5));
  Species sp("e", -1.0, 1.0);
  Particle p;
  p.i = pic.grid.voxel(4, 4, 4);
  p.dx = 0.8f;
  p.dy = 0.5f;
  p.dz = -0.7f;
  p.ux = 2.5f;
  p.uy = 1.5f;
  p.uz = -1.0f;  // crosses several faces
  p.w = 1.0f;
  sp.add(p);
  pic.step({&sp});
  const double gamma = std::sqrt(1.0 + 2.5 * 2.5 + 1.5 * 1.5 + 1.0);
  const double expect = -1.0 * (2.5 / gamma);
  EXPECT_NEAR(total_jx(pic.fields), expect, 1e-4 * std::abs(expect));
}

TEST(AccumulatorTest, OppositeChargesCancel) {
  MiniPic pic(cube_grid(8, 0.5));
  Species e("e", -1.0, 1.0);
  Species ion("i", +1.0, 1.0);
  Particle p;
  p.i = pic.grid.voxel(4, 4, 4);
  p.ux = 0.3f;
  p.w = 1.0f;
  e.add(p);
  ion.add(p);
  pic.step({&e, &ion});
  EXPECT_NEAR(total_jx(pic.fields), 0.0, 1e-7);
}

TEST(AccumulatorTest, StationaryParticleDepositsNothing) {
  MiniPic pic(cube_grid(8, 0.5));
  Species sp("e", -1.0, 1.0);
  Particle p;
  p.i = pic.grid.voxel(4, 4, 4);
  p.w = 5.0f;
  sp.add(p);
  pic.step({&sp});
  const auto& f = pic.fields;
  for (int k = 1; k <= 8; ++k)
    for (int j = 1; j <= 8; ++j)
      for (int i = 1; i <= 8; ++i) {
        ASSERT_EQ(f.jfx(i, j, k), 0.0f);
        ASSERT_EQ(f.jfy(i, j, k), 0.0f);
        ASSERT_EQ(f.jfz(i, j, k), 0.0f);
      }
}

TEST(AccumulatorTest, DepositLandsOnAdjacentEdges) {
  // A particle at the center of cell (4,4,4) moving in +x deposits jx only
  // on that cell's four x-edges.
  MiniPic pic(cube_grid(8, 0.5));
  Species sp("e", -1.0, 1.0);
  Particle p;
  p.i = pic.grid.voxel(4, 4, 4);
  p.ux = 0.1f;
  p.w = 1.0f;
  sp.add(p);
  pic.step({&sp});
  const auto& f = pic.fields;
  int nonzero = 0;
  for (int k = 1; k <= 8; ++k)
    for (int j = 1; j <= 8; ++j)
      for (int i = 1; i <= 8; ++i)
        if (f.jfx(i, j, k) != 0.0f) {
          ++nonzero;
          EXPECT_EQ(i, 4);
          EXPECT_TRUE(j == 4 || j == 5);
          EXPECT_TRUE(k == 4 || k == 5);
        }
  EXPECT_EQ(nonzero, 4);
}

}  // namespace
}  // namespace minivpic::particles
