#include "particles/interpolator.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "grid/halo.hpp"

namespace minivpic::particles {
namespace {

grid::GlobalGrid cube(int n, double h = 0.5) {
  grid::GlobalGrid g;
  g.nx = g.ny = g.nz = n;
  g.dx = g.dy = g.dz = h;
  return g;
}

TEST(InterpolatorTest, LayoutIs80Bytes) { EXPECT_EQ(sizeof(Interpolator), 80u); }

TEST(InterpolatorTest, UniformFieldExactEverywhere) {
  const grid::LocalGrid g(cube(4));
  grid::FieldArray f(g);
  grid::Halo halo(g, nullptr);
  for (int k = 0; k <= 5; ++k)
    for (int j = 0; j <= 5; ++j)
      for (int i = 0; i <= 5; ++i) {
        f.ex(i, j, k) = 1.0f;
        f.ey(i, j, k) = 2.0f;
        f.ez(i, j, k) = 3.0f;
        f.cbx(i, j, k) = -1.0f;
        f.cby(i, j, k) = -2.0f;
        f.cbz(i, j, k) = -3.0f;
      }
  InterpolatorArray interp(g);
  interp.load(f);
  for (float dx : {-0.9f, 0.0f, 0.7f}) {
    for (float dy : {-1.0f, 0.3f}) {
      const auto v = interp.evaluate(g.voxel(2, 2, 2), dx, dy, 0.5f);
      EXPECT_FLOAT_EQ(v.ex, 1.0f);
      EXPECT_FLOAT_EQ(v.ey, 2.0f);
      EXPECT_FLOAT_EQ(v.ez, 3.0f);
      EXPECT_FLOAT_EQ(v.cbx, -1.0f);
      EXPECT_FLOAT_EQ(v.cby, -2.0f);
      EXPECT_FLOAT_EQ(v.cbz, -3.0f);
    }
  }
}

TEST(InterpolatorTest, CornerValuesRecovered) {
  // At offset (dy,dz) = (-1,-1) the interpolated Ex must equal the raw edge
  // value ex(i,j,k); at (+1,+1) it must equal ex(i,j+1,k+1).
  const grid::LocalGrid g(cube(4));
  grid::FieldArray f(g);
  f.ex(2, 2, 2) = 10.0f;
  f.ex(2, 3, 2) = 20.0f;
  f.ex(2, 2, 3) = 30.0f;
  f.ex(2, 3, 3) = 40.0f;
  InterpolatorArray interp(g);
  interp.load(f);
  const auto v = g.voxel(2, 2, 2);
  EXPECT_FLOAT_EQ(interp.evaluate(v, 0, -1, -1).ex, 10.0f);
  EXPECT_FLOAT_EQ(interp.evaluate(v, 0, +1, -1).ex, 20.0f);
  EXPECT_FLOAT_EQ(interp.evaluate(v, 0, -1, +1).ex, 30.0f);
  EXPECT_FLOAT_EQ(interp.evaluate(v, 0, +1, +1).ex, 40.0f);
  // Center is the average.
  EXPECT_FLOAT_EQ(interp.evaluate(v, 0, 0, 0).ex, 25.0f);
}

TEST(InterpolatorTest, BFaceValuesRecovered) {
  const grid::LocalGrid g(cube(4));
  grid::FieldArray f(g);
  f.cbx(2, 2, 2) = 5.0f;
  f.cbx(3, 2, 2) = 9.0f;
  InterpolatorArray interp(g);
  interp.load(f);
  const auto v = g.voxel(2, 2, 2);
  EXPECT_FLOAT_EQ(interp.evaluate(v, -1, 0, 0).cbx, 5.0f);
  EXPECT_FLOAT_EQ(interp.evaluate(v, +1, 0, 0).cbx, 9.0f);
  EXPECT_FLOAT_EQ(interp.evaluate(v, 0, 0, 0).cbx, 7.0f);
}

TEST(InterpolatorTest, LinearFieldExact) {
  // Ex varying linearly in y must interpolate exactly (bilinear scheme).
  const grid::LocalGrid g(cube(8, 1.0));
  grid::FieldArray f(g);
  grid::Halo halo(g, nullptr);
  for (int k = 0; k <= 9; ++k)
    for (int j = 0; j <= 9; ++j)
      for (int i = 0; i <= 9; ++i) f.ex(i, j, k) = float(j);
  InterpolatorArray interp(g);
  interp.load(f);
  // In cell j=3: edges at j=3 (value 3) and j=4 (value 4); offset dy maps
  // linearly between them.
  const auto v = g.voxel(4, 3, 4);
  EXPECT_NEAR(interp.evaluate(v, 0, -1.0f, 0).ex, 3.0f, 1e-6);
  EXPECT_NEAR(interp.evaluate(v, 0, 0.0f, 0).ex, 3.5f, 1e-6);
  EXPECT_NEAR(interp.evaluate(v, 0, 0.5f, 0).ex, 3.75f, 1e-6);
}

TEST(InterpolatorTest, CrossTermExact) {
  // Ex = y*z product field: the d2exdydz term must capture it exactly.
  const grid::LocalGrid g(cube(4, 1.0));
  grid::FieldArray f(g);
  for (int k = 0; k <= 5; ++k)
    for (int j = 0; j <= 5; ++j)
      for (int i = 0; i <= 5; ++i) f.ex(i, j, k) = float(j * k);
  InterpolatorArray interp(g);
  interp.load(f);
  const auto v = g.voxel(2, 2, 2);
  // Bilinear in (y,z) between node values 2*2=4, 3*2=6, 2*3=6, 3*3=9.
  EXPECT_NEAR(interp.evaluate(v, 0, 0, 0).ex, 6.25f, 1e-6);
  EXPECT_NEAR(interp.evaluate(v, 0, -1, -1).ex, 4.0f, 1e-6);
  EXPECT_NEAR(interp.evaluate(v, 0, 1, 1).ex, 9.0f, 1e-6);
  EXPECT_NEAR(interp.evaluate(v, 0, 1, -1).ex, 6.0f, 1e-6);
}

TEST(InterpolatorTest, GhostCellsFeedBoundaryCells) {
  // Periodic field: interpolation in the last cell must see the wrapped
  // values through the refreshed ghosts.
  const grid::LocalGrid g(cube(4));
  grid::FieldArray f(g);
  grid::Halo halo(g, nullptr);
  for (int k = 1; k <= 4; ++k)
    for (int j = 1; j <= 4; ++j)
      for (int i = 1; i <= 4; ++i) f.ey(i, j, k) = float(i);
  halo.refresh(f, grid::em_components());
  InterpolatorArray interp(g);
  interp.load(f);
  // Cell i=4: ey edges at i=4 (4.0) and i=5 -> ghost = wrapped value 1.0.
  const auto v = g.voxel(4, 2, 2);
  EXPECT_NEAR(interp.evaluate(v, -1, 0, 0).ey, 4.0f, 1e-6);
  EXPECT_NEAR(interp.evaluate(v, +1, 0, 0).ey, 1.0f, 1e-6);
}

}  // namespace
}  // namespace minivpic::particles
