#include "particles/migrate.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "harness.hpp"
#include "util/error.hpp"
#include "vmpi/runtime.hpp"

namespace minivpic::particles {
namespace {

using testing::MultiPic;
using testing::cube_grid;

TEST(MigrateTest, SingleRankRejectsEmigrants) {
  const grid::LocalGrid g(cube_grid(4, 0.5));
  Species sp("e", -1.0, 1.0);
  Pusher pusher(g, periodic_particles());
  AccumulatorArray acc(g);
  std::vector<Emigrant> ghosts(1);
  EXPECT_THROW(
      migrate_particles(std::move(ghosts), sp, pusher, acc, g, nullptr),
      Error);
}

TEST(MigrateTest, EmptyMigrationIsCheapNoop) {
  const grid::LocalGrid g(cube_grid(4, 0.5));
  Species sp("e", -1.0, 1.0);
  Pusher pusher(g, periodic_particles());
  AccumulatorArray acc(g);
  const auto st = migrate_particles({}, sp, pusher, acc, g, nullptr);
  EXPECT_EQ(st.sent, 0);
  EXPECT_EQ(st.rounds, 0);
}

TEST(MigrateTest, ParticleCrossesRankBoundary) {
  const auto gg = cube_grid(8, 0.5);
  vmpi::run(2, [&](vmpi::Comm& comm) {
    const vmpi::CartTopology topo({2, 1, 1}, {true, true, true});
    MultiPic pic(gg, topo, comm);
    Species sp("e", -1.0, 1.0);
    double x0 = 0, v = 0;
    if (comm.rank() == 0) {
      // Last cell of rank 0, moving +x fast enough to cross this step.
      Particle p;
      p.i = pic.grid.voxel(pic.grid.nx(), 4, 4);
      p.dx = 0.9f;
      p.ux = 2.0f;
      p.w = 1e-10f;
      sp.add(p);
      const auto c = pic.grid.voxel_coords(p.i);
      x0 = pic.grid.node_x(c[0]) + 0.5 * (1.0 + p.dx) * pic.grid.dx();
      v = 2.0 / std::sqrt(5.0);
    }
    const auto st = pic.step({&sp});
    const long long total =
        comm.allreduce_value<long long>((long long)sp.size(), vmpi::Op::kSum);
    EXPECT_EQ(total, 1);
    if (comm.rank() == 0) {
      EXPECT_EQ(sp.size(), 0u);  // it left
      EXPECT_EQ(st.migrate.sent, 1);
    } else {
      ASSERT_EQ(sp.size(), 1u);  // it arrived
      EXPECT_EQ(st.migrate.received, 1);
      const Particle& p = sp[0];
      const auto c = pic.grid.voxel_coords(p.i);
      EXPECT_TRUE(pic.grid.is_interior(c[0], c[1], c[2]));
      const double x1 =
          pic.grid.node_x(c[0]) + 0.5 * (1.0 + p.dx) * pic.grid.dx();
      // Sender's analytic endpoint (shared via the known initial state).
      const double expect =
          (0.5 * 8 / 2.0)  /* rank-0 slab end */ - 0.5 * 0.05 +
          0.0;  // placeholder, recomputed below
      (void)expect;
      // Recompute from rank-0 initial state: x0 = node_x(4)+... Both ranks
      // know the deck, so just recompute:
      const double start = 0.5 * (4 - 1) + 0.5 * (1.0 + 0.9) * 0.5 / 1.0;
      (void)start;
      const double sender_x0 = (4 - 1) * 0.5 + 0.5 * (1.0 + 0.9) * 0.5;
      const double vv = 2.0 / std::sqrt(5.0);
      EXPECT_NEAR(x1, sender_x0 + vv * pic.grid.dt(), 1e-5);
    }
    (void)x0;
    (void)v;
  });
}

TEST(MigrateTest, PeriodicWrapAcrossRanks) {
  const auto gg = cube_grid(8, 0.5);
  vmpi::run(2, [&](vmpi::Comm& comm) {
    const vmpi::CartTopology topo({2, 1, 1}, {true, true, true});
    MultiPic pic(gg, topo, comm);
    Species sp("e", -1.0, 1.0);
    if (comm.rank() == 1) {
      // Last cell of the global domain moving +x: wraps to rank 0.
      Particle p;
      p.i = pic.grid.voxel(pic.grid.nx(), 4, 4);
      p.dx = 0.95f;
      p.ux = 2.0f;
      p.w = 1e-10f;
      sp.add(p);
    }
    pic.step({&sp});
    const long long mine = (long long)sp.size();
    if (comm.rank() == 0) EXPECT_EQ(mine, 1);
    if (comm.rank() == 1) EXPECT_EQ(mine, 0);
  });
}

TEST(MigrateTest, CornerHopTakesTwoRounds) {
  const auto gg = cube_grid(8, 0.5);
  vmpi::run(4, [&](vmpi::Comm& comm) {
    const vmpi::CartTopology topo({2, 2, 1}, {true, true, true});
    MultiPic pic(gg, topo, comm);
    Species sp("e", -1.0, 1.0);
    if (comm.rank() == 0) {
      // Top-right corner cell of rank 0's slab, aimed diagonally out.
      Particle p;
      p.i = pic.grid.voxel(pic.grid.nx(), pic.grid.ny(), 4);
      p.dx = 0.98f;
      p.dy = 0.98f;
      p.ux = 3.0f;
      p.uy = 3.0f;
      p.w = 1e-10f;
      sp.add(p);
    }
    const auto st = pic.step({&sp});
    EXPECT_GE(st.migrate.rounds, 2) << "corner hop needs two exchange rounds";
    const long long total =
        comm.allreduce_value<long long>((long long)sp.size(), vmpi::Op::kSum);
    EXPECT_EQ(total, 1);
    // It should end up on the diagonal rank (rank 3).
    if (comm.rank() == 3) EXPECT_EQ(sp.size(), 1u);
  });
}

TEST(MigrateTest, PlasmaCountConservedOverManySteps) {
  const auto gg = cube_grid(8, 0.5);
  vmpi::run(2, [&](vmpi::Comm& comm) {
    const vmpi::CartTopology topo({2, 1, 1}, {true, true, true});
    MultiPic pic(gg, topo, comm);
    Species sp("e", -1.0, 1.0);
    LoadConfig cfg;
    cfg.ppc = 8;
    cfg.uth = 0.4;  // hot: constant traffic between ranks
    load_uniform(sp, pic.grid, cfg);
    const long long total0 =
        comm.allreduce_value<long long>((long long)sp.size(), vmpi::Op::kSum);
    long long moved = 0;
    for (int s = 0; s < 10; ++s) {
      const auto st = pic.step({&sp});
      moved += st.migrate.sent;
      const long long total = comm.allreduce_value<long long>(
          (long long)sp.size(), vmpi::Op::kSum);
      ASSERT_EQ(total, total0) << "step " << s;
    }
    EXPECT_GT(comm.allreduce_value(moved, vmpi::Op::kSum), 0);
  });
}

TEST(MigrateTest, GaussResidualInvariantAcrossRanks) {
  // Charge conservation must hold through rank-to-rank handoffs too.
  const auto gg = cube_grid(8, 0.5);
  vmpi::run(2, [&](vmpi::Comm& comm) {
    const vmpi::CartTopology topo({2, 1, 1}, {true, true, true});
    MultiPic pic(gg, topo, comm);
    Species sp("e", -1.0, 1.0);
    LoadConfig cfg;
    cfg.ppc = 8;
    cfg.uth = 0.4;
    load_uniform(sp, pic.grid, cfg);

    auto residual = [&](std::vector<double>& out) {
      out.clear();
      const auto& f = pic.fields;
      const auto& g = pic.grid;
      for (int k = 1; k <= g.nz(); ++k)
        for (int j = 1; j <= g.ny(); ++j)
          for (int i = 1; i <= g.nx(); ++i)
            out.push_back(
                (double(f.ex(i, j, k)) - f.ex(i - 1, j, k)) / g.dx() +
                (double(f.ey(i, j, k)) - f.ey(i, j - 1, k)) / g.dy() +
                (double(f.ez(i, j, k)) - f.ez(i, j, k - 1)) / g.dz() -
                f.rhof(i, j, k));
    };

    pic.fields.clear_sources();
    accumulate_rho(sp, pic.fields);
    pic.halo.reduce_sources(pic.fields);
    std::vector<double> r0, r;
    residual(r0);
    double drift = 0;
    for (int s = 0; s < 8; ++s) {
      pic.step({&sp});
      residual(r);
      for (std::size_t n = 0; n < r.size(); ++n)
        drift = std::max(drift, std::abs(r[n] - r0[n]));
    }
    EXPECT_LT(drift, 5e-4);
  });
}

}  // namespace
}  // namespace minivpic::particles
