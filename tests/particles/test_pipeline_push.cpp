// The pipeline layer's correctness contract: advancing a species on N
// pipelines — each depositing into a private accumulator block, folded once
// per step — must reproduce the serial advance *exactly* (bit-identical
// unloaded J, identical counters, identical survivors) on decks without
// reflux walls, and statistically on decks with them (reflux draws come
// from per-pipeline RNG streams).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "harness.hpp"
#include "sim/simulation.hpp"
#include "util/error.hpp"
#include "util/pipeline.hpp"

namespace minivpic::particles {
namespace {

using testing::MiniPic;
using testing::cube_grid;

/// MiniPic with the particle advance spread across a pipeline pool: the
/// production step sequence (advance -> migrate -> reduce -> unload).
struct PipelinePic {
  PipelinePic(const grid::GlobalGrid& gg, int n_pipelines,
              const ParticleBcSpec& pbc = periodic_particles())
      : pool(n_pipelines),
        grid(gg),
        fields(grid),
        halo(grid, nullptr),
        solver(grid, &halo),
        interp(grid),
        acc(grid, n_pipelines),
        pusher(grid, pbc) {
    solver.boundary().capture(fields);
  }

  Pusher::Result step(std::vector<Species*> species) {
    interp.load(fields);
    acc.clear();
    fields.clear_sources();
    Pusher::Result total;
    for (Species* sp : species) {
      auto r = pusher.advance(*sp, interp, acc, &pool);
      total.pushed += r.pushed;
      total.crossings += r.crossings;
      total.absorbed += r.absorbed;
      total.reflected += r.reflected;
      total.refluxed += r.refluxed;
      migrate_particles(std::move(r.emigrants), *sp, pusher, acc, grid,
                        nullptr);
    }
    acc.reduce();
    acc.unload(fields);
    for (Species* sp : species) accumulate_rho(*sp, fields);
    halo.reduce_sources(fields);
    solver.advance_b(fields, 0.5);
    solver.advance_e(fields);
    solver.advance_b(fields, 0.5);
    return total;
  }

  Pipeline pool;
  grid::LocalGrid grid;
  grid::FieldArray fields;
  grid::Halo halo;
  field::FieldSolver solver;
  InterpolatorArray interp;
  AccumulatorArray acc;
  Pusher pusher;
};

/// Loads counter-streaming electron beams (the two-stream setup): same
/// deterministic loader seed in both harnesses gives identical particles.
void load_two_stream(Species& a, Species& b, const grid::LocalGrid& g) {
  LoadConfig cfg;
  cfg.ppc = 12;
  cfg.uth = 0.02;
  cfg.drift = {0.3, 0, 0};
  load_uniform(a, g, cfg);
  cfg.drift = {-0.3, 0, 0};
  load_uniform(b, g, cfg);
}

/// True when every interior J component matches bit-for-bit.
::testing::AssertionResult j_identical(const grid::FieldArray& a,
                                       const grid::FieldArray& b) {
  const auto& g = a.grid();
  for (int k = 0; k <= g.nz() + 1; ++k)
    for (int j = 0; j <= g.ny() + 1; ++j)
      for (int i = 0; i <= g.nx() + 1; ++i) {
        if (a.jfx(i, j, k) != b.jfx(i, j, k) ||
            a.jfy(i, j, k) != b.jfy(i, j, k) ||
            a.jfz(i, j, k) != b.jfz(i, j, k))
          return ::testing::AssertionFailure()
                 << "J differs at (" << i << "," << j << "," << k << "): ("
                 << a.jfx(i, j, k) << "," << a.jfy(i, j, k) << ","
                 << a.jfz(i, j, k) << ") vs (" << b.jfx(i, j, k) << ","
                 << b.jfy(i, j, k) << "," << b.jfz(i, j, k) << ")";
      }
  return ::testing::AssertionSuccess();
}

/// True when every J component matches to `rel` times the grid-wide max
/// |J|. Rounding differences scale with the *deposit* magnitudes, so a
/// per-cell relative test would spuriously fail in near-cancellation cells
/// (counter-streaming currents summing to ~0).
::testing::AssertionResult j_close(const grid::FieldArray& a,
                                   const grid::FieldArray& b, double rel) {
  const auto& g = a.grid();
  double max_abs = 0;
  for (int k = 0; k <= g.nz() + 1; ++k)
    for (int j = 0; j <= g.ny() + 1; ++j)
      for (int i = 0; i <= g.nx() + 1; ++i)
        max_abs = std::max({max_abs, std::abs(double(a.jfx(i, j, k))),
                            std::abs(double(a.jfy(i, j, k))),
                            std::abs(double(a.jfz(i, j, k)))});
  const double tol = rel * std::max(max_abs, 1e-12);
  for (int k = 0; k <= g.nz() + 1; ++k)
    for (int j = 0; j <= g.ny() + 1; ++j)
      for (int i = 0; i <= g.nx() + 1; ++i) {
        const double comps[3][2] = {{a.jfx(i, j, k), b.jfx(i, j, k)},
                                    {a.jfy(i, j, k), b.jfy(i, j, k)},
                                    {a.jfz(i, j, k), b.jfz(i, j, k)}};
        for (const auto& c : comps)
          if (std::abs(c[0] - c[1]) > tol)
            return ::testing::AssertionFailure()
                   << "J differs at (" << i << "," << j << "," << k
                   << "): " << c[0] << " vs " << c[1] << " (tol " << tol
                   << ")";
      }
  return ::testing::AssertionSuccess();
}

TEST(PipelinePushTest, SparseDepositMatchesSerialBitwise) {
  // When no cell collects more than one deposit per accumulator block, the
  // in-order block fold reproduces the serial per-cell addition sequence
  // exactly — this is ==, not EXPECT_NEAR. Eight slow particles in eight
  // well-separated cells, two per pipeline.
  MiniPic serial(cube_grid(8, 0.5));
  PipelinePic piped(cube_grid(8, 0.5), 4);
  auto load = [](Species& sp, const grid::LocalGrid& g) {
    int n = 0;
    for (int c = 1; c <= 8; ++c) {
      Particle p;
      p.i = g.voxel(c, 1 + (c % 4) * 2, 1 + (c / 2) % 4 * 2);
      p.ux = 0.05f * float(n + 1);
      p.uy = -0.03f * float(n);
      p.uz = 0.02f;
      p.w = 0.7f;
      sp.add(p);
      ++n;
    }
  };
  Species ss("e", -1.0, 1.0), sp("e", -1.0, 1.0);
  load(ss, serial.grid);
  load(sp, piped.grid);
  const auto rs = serial.step({&ss});
  const auto rp = piped.step({&sp});
  EXPECT_EQ(rs.pushed, rp.pushed);
  EXPECT_EQ(rs.crossings, rp.crossings);
  ASSERT_TRUE(j_identical(serial.fields, piped.fields));
  // And the trajectories are always bit-identical in an identical field.
  for (std::size_t n = 0; n < ss.size(); ++n) {
    EXPECT_EQ(ss[n].i, sp[n].i);
    EXPECT_EQ(ss[n].dx, sp[n].dx);
    EXPECT_EQ(ss[n].ux, sp[n].ux);
  }
}

TEST(PipelinePushTest, DenseTwoStreamMatchesSerialToRounding) {
  // Dense deck: cells collect many deposits per block, so the fold rounds
  // in a different order than the serial running sum — agreement is to
  // float rounding (ULPs per cell), with counters still exact.
  MiniPic serial(cube_grid(8, 0.5));
  PipelinePic piped(cube_grid(8, 0.5), 4);
  Species se("e+", -1.0, 1.0), sb("e-", -1.0, 1.0);
  Species pe("e+", -1.0, 1.0), pb("e-", -1.0, 1.0);
  load_two_stream(se, sb, serial.grid);
  load_two_stream(pe, pb, piped.grid);

  for (int s = 0; s < 5; ++s) {
    const auto rs = serial.step({&se, &sb});
    const auto rp = piped.step({&pe, &pb});
    EXPECT_EQ(rs.pushed, rp.pushed);
    ASSERT_TRUE(j_close(serial.fields, piped.fields, 1e-4)) << "step " << s;
  }
  EXPECT_EQ(se.size(), pe.size());
  EXPECT_EQ(sb.size(), pb.size());
}

TEST(PipelinePushTest, TwoStreamDeckMatchesSerialThroughSimulation) {
  // The same contract via the production driver on the two-stream deck:
  // deck.pipelines = N tracks deck.pipelines = 1 to rounding.
  auto deck1 = sim::two_stream_deck(8, 8, 0.2);
  auto deckN = deck1;
  deck1.pipelines = 1;
  deckN.pipelines = 3;
  sim::Simulation s1(deck1), sN(deckN);
  s1.initialize();
  sN.initialize();
  EXPECT_EQ(sN.pipelines(), 3);
  s1.run(5);
  sN.run(5);
  EXPECT_TRUE(j_close(s1.fields(), sN.fields(), 1e-4));
  const auto e1 = s1.energies();
  const auto eN = sN.energies();
  EXPECT_NEAR(eN.kinetic_total / e1.kinetic_total, 1.0, 1e-6);
  EXPECT_NEAR(eN.field.total() / e1.field.total(), 1.0, 1e-4);
}

TEST(PipelinePushTest, AbsorbingWallCountersMatchSerial) {
  // Absorption is deterministic; emigrant/dead splicing is pipeline-major
  // in particle order, so even the removal sequence matches serial.
  auto gg = cube_grid(8, 0.5);
  gg.boundary = grid::lpi_boundaries();
  MiniPic serial(gg, lpi_particles());
  PipelinePic piped(gg, 4, lpi_particles());
  Species ss("e", -1.0, 1.0), sp("e", -1.0, 1.0);
  LoadConfig cfg;
  cfg.ppc = 8;
  cfg.uth = 0.3;  // hot: steady wall losses
  load_uniform(ss, serial.grid, cfg);
  load_uniform(sp, piped.grid, cfg);

  std::int64_t absorbed_s = 0, absorbed_p = 0;
  for (int s = 0; s < 20; ++s) {
    const auto rs = serial.step({&ss});
    const auto rp = piped.step({&sp});
    EXPECT_EQ(rs.pushed, rp.pushed) << "step " << s;
    EXPECT_EQ(rs.crossings, rp.crossings) << "step " << s;
    EXPECT_EQ(rs.absorbed, rp.absorbed) << "step " << s;
    absorbed_s += rs.absorbed;
    absorbed_p += rp.absorbed;
  }
  EXPECT_GT(absorbed_s, 0) << "walls never hit — test is vacuous";
  EXPECT_EQ(absorbed_s, absorbed_p);
  EXPECT_EQ(ss.size(), sp.size());
}

TEST(PipelinePushTest, ChargeConservedAtNPipelines) {
  // div E - rho stays a constant of the motion when the deposit is split
  // across pipelines (the private-block fold must not drop or double count
  // any quadrant flux).
  PipelinePic pic(cube_grid(6, 0.5), 4);
  Species sp("e", -1.0, 1.0);
  LoadConfig cfg;
  cfg.ppc = 16;
  cfg.uth = 0.5;  // many crossings per step
  load_uniform(sp, pic.grid, cfg);

  auto residual = [&]() {
    std::vector<double> r;
    const auto& g = pic.grid;
    for (int k = 1; k <= g.nz(); ++k)
      for (int j = 1; j <= g.ny(); ++j)
        for (int i = 1; i <= g.nx(); ++i)
          r.push_back(
              (double(pic.fields.ex(i, j, k)) - pic.fields.ex(i - 1, j, k)) /
                  g.dx() +
              (double(pic.fields.ey(i, j, k)) - pic.fields.ey(i, j - 1, k)) /
                  g.dy() +
              (double(pic.fields.ez(i, j, k)) - pic.fields.ez(i, j, k - 1)) /
                  g.dz() -
              pic.fields.rhof(i, j, k));
    return r;
  };
  pic.fields.clear_sources();
  accumulate_rho(sp, pic.fields);
  pic.halo.reduce_sources(pic.fields);
  const auto r0 = residual();
  double drift = 0;
  for (int s = 0; s < 10; ++s) {
    pic.step({&sp});
    const auto r = residual();
    for (std::size_t n = 0; n < r.size(); ++n)
      drift = std::max(drift, std::abs(r[n] - r0[n]));
  }
  EXPECT_LT(drift, 5e-4);
}

TEST(PipelinePushTest, RefluxStatisticsMatchSerial) {
  // Reflux walls draw from per-pipeline RNG streams, so a 2-pipeline run
  // diverges from serial particle-by-particle — but the wall physics must
  // agree statistically: same count conservation, similar traffic, similar
  // plasma temperature. (Regression for the old shared mutable RNG, which
  // would have been a data race across pipelines.)
  auto gg = cube_grid(8, 0.5);
  gg.boundary = grid::lpi_boundaries();
  ParticleBcSpec bc = periodic_particles();
  bc[grid::kFaceXLo] = ParticleBc::kReflux;
  bc[grid::kFaceXHi] = ParticleBc::kReflux;

  const double uth = 0.3;
  auto run = [&](int pipelines, std::int64_t* refluxed, double* ke) {
    PipelinePic pic(gg, pipelines, bc);
    pic.pusher.set_reflux_uth(uth);
    Species sp("e", -1.0, 1.0);
    LoadConfig cfg;
    cfg.ppc = 8;
    cfg.uth = uth;
    load_uniform(sp, pic.grid, cfg);
    const std::size_t n0 = sp.size();
    *refluxed = 0;
    for (int s = 0; s < 40; ++s) *refluxed += pic.step({&sp}).refluxed;
    EXPECT_EQ(sp.size(), n0) << "reflux must conserve particle count";
    *ke = sp.kinetic_energy();
  };
  std::int64_t reflux1 = 0, reflux2 = 0;
  double ke1 = 0, ke2 = 0;
  run(1, &reflux1, &ke1);
  run(2, &reflux2, &ke2);
  ASSERT_GT(reflux1, 100) << "walls barely hit — comparison is vacuous";
  ASSERT_GT(reflux2, 100);
  EXPECT_NEAR(double(reflux2) / double(reflux1), 1.0, 0.25);
  EXPECT_NEAR(ke2 / ke1, 1.0, 0.25);
}

TEST(PipelinePushTest, AdvanceRequiresOneBlockPerPipeline) {
  MiniPic pic(cube_grid(4, 0.5));  // acc has a single block
  Species sp("e", -1.0, 1.0);
  LoadConfig cfg;
  cfg.ppc = 2;
  load_uniform(sp, pic.grid, cfg);
  Pipeline pool(3);
  EXPECT_THROW(pic.pusher.advance(sp, pic.interp, pic.acc, &pool), Error);
}

}  // namespace
}  // namespace minivpic::particles
