// The in-place bin sort's contract (docs/SORTING.md):
//   - pure permutation: the byte-multiset of particles is untouched;
//   - deterministic: same input array -> same output array for EVERY
//     pipeline count (only the integer histogram is parallel);
//   - idempotent: sorting a sorted list is a pure scan, zero swaps,
//     byte-identical output;
//   - physics-neutral: a sorted and an unsorted particle list advance to
//     bit-identical per-particle states over a single step (each particle
//     reads only its own state plus the read-only interpolator), with exact
//     integer counters; over many steps only the order of the float J
//     deposits within a cell differs, so fields — and through them energies
//     — agree to rounding, not bit-exactly;
//   - safe right after migration/reflux: every particle a step leaves
//     behind has a valid interior voxel, so a sort can run on any step
//     boundary.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "harness.hpp"
#include "util/pipeline.hpp"
#include "util/rng.hpp"

namespace minivpic::particles {
namespace {

using testing::MiniPic;
using testing::cube_grid;

void fill_random(Species& sp, const grid::LocalGrid& g, int n, int cells,
                 std::uint64_t seed) {
  Rng rng(seed);
  for (int k = 0; k < n; ++k) {
    Particle p;
    p.i = g.voxel(1 + int(rng.uniform_u64(std::uint64_t(cells))),
                  1 + int(rng.uniform_u64(std::uint64_t(cells))),
                  1 + int(rng.uniform_u64(std::uint64_t(cells))));
    p.dx = float(rng.uniform(-1, 1));
    p.dy = float(rng.uniform(-1, 1));
    p.dz = float(rng.uniform(-1, 1));
    p.ux = float(rng.uniform(-0.1, 0.1));
    p.w = 1.0f + float(k % 7);
    sp.add(p);
  }
}

void shuffle(Species& sp, std::uint64_t seed) {
  Rng rng(seed);
  for (std::size_t n = sp.size(); n > 1; --n)
    std::swap(sp[n - 1], sp[std::size_t(rng.uniform_u64(n))]);
}

bool bytes_equal(const Species& a, const Species& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(Particle)) == 0;
}

/// The particle list as an order-independent multiset of 32-byte records.
std::vector<std::array<unsigned char, sizeof(Particle)>> canon(
    const Species& sp) {
  std::vector<std::array<unsigned char, sizeof(Particle)>> v(sp.size());
  for (std::size_t n = 0; n < sp.size(); ++n)
    std::memcpy(v[n].data(), &sp[n], sizeof(Particle));
  std::sort(v.begin(), v.end());
  return v;
}

TEST(SortTest, IsPermutationAndOrders) {
  const grid::LocalGrid g(cube_grid(4, 0.5));
  Species sp("e", -1.0, 1.0);
  fill_random(sp, g, 1000, 4, 21);
  const auto before = canon(sp);
  sp.sort(g);
  for (std::size_t n = 1; n < sp.size(); ++n)
    ASSERT_LE(sp[n - 1].i, sp[n].i) << "unsorted at " << n;
  EXPECT_EQ(canon(sp), before) << "sort must be a pure permutation";
}

TEST(SortTest, Idempotent) {
  const grid::LocalGrid g(cube_grid(4, 0.5));
  Species sp("e", -1.0, 1.0);
  fill_random(sp, g, 1000, 4, 22);
  sp.sort(g);
  std::vector<Particle> snap(sp.particles().begin(), sp.particles().end());
  sp.sort(g);  // sorted input: pure scan, zero swaps
  ASSERT_EQ(sp.size(), snap.size());
  EXPECT_EQ(std::memcmp(sp.data(), snap.data(),
                        snap.size() * sizeof(Particle)),
            0);
}

TEST(SortTest, PipelinedMatchesSerial) {
  const grid::LocalGrid g(cube_grid(4, 0.5));
  Species serial("e", -1.0, 1.0);
  fill_random(serial, g, 2000, 4, 23);
  // Same content, sorted under different pool widths (including one that
  // does not divide the particle count evenly).
  for (const int npipe : {2, 4, 5}) {
    Species pooled("e", -1.0, 1.0);
    fill_random(pooled, g, 2000, 4, 23);
    ASSERT_TRUE(bytes_equal(serial, pooled));
    Pipeline pool(npipe);
    pooled.sort(g, &pool);
    Species ref("e", -1.0, 1.0);
    fill_random(ref, g, 2000, 4, 23);
    ref.sort(g);  // serial reference
    EXPECT_TRUE(bytes_equal(ref, pooled))
        << "pipelined sort (" << npipe << " pipelines) diverged from serial";
  }
}

// One PIC step on a sorted list vs the same particles shuffled: every
// particle advances independently off the shared read-only interpolator, so
// the resulting particle *multisets* are bit-identical and the integer
// counters exact — for every advance kernel this host can run.
TEST(SortTest, SortedVsUnsortedSingleStepBitParityPerKernel) {
  for (const Kernel kernel : available_kernels()) {
    const auto gg = cube_grid(6, 0.5, 0.05);
    MiniPic sorted_pic(gg), shuffled_pic(gg);
    for (int k = 0; k <= 7; ++k)
      for (int j = 0; j <= 7; ++j)
        for (int i = 0; i <= 7; ++i) {
          sorted_pic.fields.ey(i, j, k) = 0.02f * float(std::sin(0.4 * i));
          shuffled_pic.fields.ey(i, j, k) = 0.02f * float(std::sin(0.4 * i));
        }
    sorted_pic.pusher.set_kernel(kernel);
    shuffled_pic.pusher.set_kernel(kernel);

    Species a("e", -1.0, 1.0), b("e", -1.0, 1.0);
    LoadConfig cfg;
    cfg.ppc = 8;
    cfg.uth = 0.2;
    load_uniform(a, sorted_pic.grid, cfg);
    load_uniform(b, shuffled_pic.grid, cfg);
    ASSERT_TRUE(bytes_equal(a, b));
    a.sort(sorted_pic.grid);  // load_uniform already emits sorted order
    shuffle(b, 31);

    const auto ra = sorted_pic.step({&a});
    const auto rb = shuffled_pic.step({&b});
    EXPECT_EQ(ra.pushed, rb.pushed) << kernel_name(kernel);
    EXPECT_EQ(ra.crossings, rb.crossings) << kernel_name(kernel);
    EXPECT_EQ(ra.absorbed, rb.absorbed) << kernel_name(kernel);
    EXPECT_EQ(ra.refluxed, rb.refluxed) << kernel_name(kernel);
    EXPECT_EQ(canon(a), canon(b))
        << "per-particle states must be bit-identical after one step ("
        << kernel_name(kernel) << " kernel)";
  }
}

// Over many steps the deposit *order* within a cell differs between the two
// orderings, so J — and through the field solve, the trajectories — agree
// to float rounding only. Energies must track tightly; counters that don't
// depend on rounding (pushed) stay exact.
TEST(SortTest, SortedVsUnsortedMultiStepEnergyParity) {
  const auto gg = cube_grid(6, 0.5, 0.05);
  MiniPic sorted_pic(gg), shuffled_pic(gg);
  for (int i = 0; i <= 7; ++i)
    for (int j = 0; j <= 7; ++j)
      for (int k = 0; k <= 7; ++k) {
        sorted_pic.fields.ey(i, j, k) = 0.02f * float(std::sin(0.4 * i));
        shuffled_pic.fields.ey(i, j, k) = 0.02f * float(std::sin(0.4 * i));
      }
  Species a("e", -1.0, 1.0), b("e", -1.0, 1.0);
  LoadConfig cfg;
  cfg.ppc = 8;
  cfg.uth = 0.2;
  load_uniform(a, sorted_pic.grid, cfg);
  load_uniform(b, shuffled_pic.grid, cfg);
  shuffle(b, 37);

  std::int64_t pushed_a = 0, pushed_b = 0;
  for (int step = 0; step < 10; ++step) {
    if (step % 3 == 0) a.sort(sorted_pic.grid);  // periodic sort, run A only
    pushed_a += sorted_pic.step({&a}).pushed;
    pushed_b += shuffled_pic.step({&b}).pushed;
  }
  EXPECT_EQ(pushed_a, pushed_b);
  const double ke_a = a.kinetic_energy(), ke_b = b.kinetic_energy();
  EXPECT_NEAR(ke_a, ke_b, 1e-4 * std::abs(ke_a))
      << "sorted vs unsorted energies must agree to rounding";
}

// A sort is legal on any step boundary: particles that just migrated or
// were thermally re-emitted at a reflux wall carry valid interior voxels.
TEST(SortTest, SortAfterMigrationWithReflux) {
  ParticleBcSpec bc = periodic_particles();
  bc[grid::kFaceXLo] = ParticleBc::kReflux;
  bc[grid::kFaceXHi] = ParticleBc::kReflux;
  auto gg = cube_grid(4, 0.5, 0.1);
  gg.boundary = grid::lpi_boundaries();  // field walls to match the reflux BC
  MiniPic pic(gg, bc);
  pic.pusher.set_reflux_uth(0.2);

  Species sp("e", -1.0, 1.0);
  LoadConfig cfg;
  cfg.ppc = 8;
  cfg.uth = 0.3;  // hot enough to hit the walls every step
  load_uniform(sp, pic.grid, cfg);
  const std::size_t np = sp.size();
  double w0 = 0;
  for (const Particle& p : sp.particles()) w0 += p.w;

  std::int64_t refluxed = 0;
  for (int step = 0; step < 5; ++step) {
    pic.pusher.set_reflux_uth(0.2);
    refluxed += pic.step({&sp}).refluxed;
    ASSERT_NO_THROW(sp.sort(pic.grid)) << "step " << step;
    EXPECT_EQ(sp.sortedness(), 1.0);
  }
  EXPECT_GT(refluxed, 0) << "test must actually exercise the reflux path";
  EXPECT_EQ(sp.size(), np) << "reflux walls conserve particle count";
  double w1 = 0;
  for (const Particle& p : sp.particles()) w1 += p.w;
  EXPECT_NEAR(w1, w0, 1e-9 * w0);
}

}  // namespace
}  // namespace minivpic::particles
