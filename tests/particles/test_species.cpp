#include "particles/species.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace minivpic::particles {
namespace {

grid::GlobalGrid cube(int n) {
  grid::GlobalGrid g;
  g.nx = g.ny = g.nz = n;
  g.dx = g.dy = g.dz = 0.5;
  return g;
}

TEST(SpeciesTest, LayoutIs32Bytes) { EXPECT_EQ(sizeof(Particle), 32u); }

TEST(SpeciesTest, ConstructionValidated) {
  EXPECT_NO_THROW(Species("e", -1.0, 1.0));
  EXPECT_THROW(Species("e", -1.0, 0.0), Error);
  EXPECT_THROW(Species("", -1.0, 1.0), Error);
}

TEST(SpeciesTest, AddGrowsStorage) {
  Species sp("e", -1.0, 1.0, 2);
  for (int n = 0; n < 100; ++n) {
    Particle p;
    p.w = float(n);
    sp.add(p);
  }
  EXPECT_EQ(sp.size(), 100u);
  EXPECT_GE(sp.capacity(), 100u);
  EXPECT_EQ(sp[99].w, 99.0f);
  EXPECT_EQ(sp[0].w, 0.0f);
}

TEST(SpeciesTest, RemoveBackfills) {
  Species sp("e", -1.0, 1.0);
  for (int n = 0; n < 4; ++n) {
    Particle p;
    p.w = float(n);
    sp.add(p);
  }
  sp.remove(1);
  EXPECT_EQ(sp.size(), 3u);
  EXPECT_EQ(sp[1].w, 3.0f);  // last particle moved into the gap
  sp.remove(2);
  EXPECT_EQ(sp.size(), 2u);
}

TEST(SpeciesTest, KineticEnergy) {
  Species sp("e", -1.0, 2.0);  // mass 2
  Particle p;
  p.ux = 3.0f;  // gamma = sqrt(10)
  p.w = 4.0f;
  sp.add(p);
  EXPECT_NEAR(sp.kinetic_energy(), 2.0 * 4.0 * (std::sqrt(10.0) - 1.0), 1e-5);
}

TEST(SpeciesTest, Momentum) {
  Species sp("e", -1.0, 2.0);
  Particle p;
  p.ux = 1.0f;
  p.uy = -2.0f;
  p.uz = 0.5f;
  p.w = 3.0f;
  sp.add(p);
  sp.add(p);
  const auto mom = sp.momentum();
  EXPECT_NEAR(mom[0], 2 * 2.0 * 3.0 * 1.0, 1e-6);
  EXPECT_NEAR(mom[1], 2 * 2.0 * 3.0 * -2.0, 1e-6);
  EXPECT_NEAR(mom[2], 2 * 2.0 * 3.0 * 0.5, 1e-6);
}

TEST(SpeciesTest, Charge) {
  Species sp("e", -2.0, 1.0);
  Particle p;
  p.w = 1.5f;
  sp.add(p);
  sp.add(p);
  EXPECT_NEAR(sp.charge(), -6.0, 1e-9);
}

TEST(SpeciesTest, SortOrdersByVoxel) {
  const grid::LocalGrid g(cube(4));
  Species sp("e", -1.0, 1.0);
  Rng rng(7);
  for (int n = 0; n < 500; ++n) {
    Particle p;
    p.i = g.voxel(1 + int(rng.uniform_u64(4)), 1 + int(rng.uniform_u64(4)),
                  1 + int(rng.uniform_u64(4)));
    p.w = float(n);  // identity tag
    sp.add(p);
  }
  sp.sort(g);
  ASSERT_EQ(sp.size(), 500u);
  for (std::size_t n = 1; n < sp.size(); ++n)
    EXPECT_LE(sp[n - 1].i, sp[n].i) << "unsorted at " << n;
}

// NOTE: the in-place cycle-chasing sort is deliberately NOT stable (within a
// voxel the final order depends on where particles started, not on insertion
// order) — the stronger guarantees it does make (deterministic permutation,
// pipeline-count independence, idempotence) live in test_sort.cpp and
// docs/SORTING.md.

TEST(SpeciesTest, SortednessReportsOrder) {
  const grid::LocalGrid g(cube(4));
  Species sp("e", -1.0, 1.0);
  // Degenerate sizes count as fully sorted.
  EXPECT_EQ(sp.sortedness(), 1.0);
  Rng rng(7);
  for (int n = 0; n < 500; ++n) {
    Particle p;
    p.i = g.voxel(1 + int(rng.uniform_u64(4)), 1 + int(rng.uniform_u64(4)),
                  1 + int(rng.uniform_u64(4)));
    sp.add(p);
  }
  EXPECT_LT(sp.sortedness(), 1.0);  // random voxel order has inversions
  EXPECT_GT(sp.sortedness(), 0.0);
  sp.sort(g);
  EXPECT_EQ(sp.sortedness(), 1.0);
}

TEST(SpeciesTest, SortPreservesMultisets) {
  const grid::LocalGrid g(cube(3));
  Species sp("e", -1.0, 1.0);
  Rng rng(9);
  double wsum = 0;
  for (int n = 0; n < 300; ++n) {
    Particle p;
    p.i = g.voxel(1 + int(rng.uniform_u64(3)), 1 + int(rng.uniform_u64(3)),
                  1 + int(rng.uniform_u64(3)));
    p.w = float(rng.uniform());
    wsum += p.w;
    sp.add(p);
  }
  sp.sort(g);
  double wsum2 = 0;
  for (const Particle& p : sp.particles()) wsum2 += p.w;
  EXPECT_NEAR(wsum2, wsum, 1e-9);
}

TEST(SpeciesTest, SortRejectsCorruptVoxel) {
  const grid::LocalGrid g(cube(2));
  Species sp("e", -1.0, 1.0);
  Particle p;
  p.i = 10000;  // out of range
  sp.add(p);
  Particle q;
  q.i = g.voxel(1, 1, 1);
  sp.add(q);
  EXPECT_THROW(sp.sort(g), Error);
}

TEST(SpeciesTest, EmptyDiagnostics) {
  Species sp("e", -1.0, 1.0);
  EXPECT_EQ(sp.kinetic_energy(), 0.0);
  EXPECT_EQ(sp.charge(), 0.0);
  EXPECT_EQ(sp.bytes(), 0);
}

}  // namespace
}  // namespace minivpic::particles
