#include <gtest/gtest.h>

#include <cmath>

#include "harness.hpp"
#include "sim/simulation.hpp"
#include "util/error.hpp"

namespace minivpic::particles {
namespace {

using testing::MiniPic;
using testing::cube_grid;

grid::GlobalGrid slab_grid() {
  auto g = cube_grid(8, 0.5);
  g.boundary = grid::lpi_boundaries();
  return g;
}

ParticleBcSpec reflux_x() {
  ParticleBcSpec bc = periodic_particles();
  bc[grid::kFaceXLo] = ParticleBc::kReflux;
  bc[grid::kFaceXHi] = ParticleBc::kReflux;
  return bc;
}

TEST(RefluxTest, WallTemperatureRequiredWhenHit) {
  MiniPic pic(slab_grid(), reflux_x());
  Species sp("e", -1.0, 1.0);
  Particle p;
  p.i = pic.grid.voxel(8, 4, 4);
  p.dx = 0.9f;
  p.ux = 2.0f;  // heads straight into the +x wall
  p.w = 1e-10f;
  sp.add(p);
  // No reflux temperature configured: hitting the wall must be an error,
  // not silent garbage.
  EXPECT_THROW(
      {
        for (int s = 0; s < 20; ++s) pic.step({&sp});
      },
      Error);
}

TEST(RefluxTest, ConservesParticleCount) {
  MiniPic pic(slab_grid(), reflux_x());
  pic.pusher.set_reflux_uth(0.1);
  Species sp("e", -1.0, 1.0);
  LoadConfig cfg;
  cfg.ppc = 8;
  cfg.uth = 0.3;  // hot: constant wall traffic
  load_uniform(sp, pic.grid, cfg);
  const std::size_t n0 = sp.size();
  std::int64_t refluxed = 0;
  for (int s = 0; s < 40; ++s) {
    pic.pusher.set_reflux_uth(0.1);
    refluxed += pic.step({&sp}).refluxed;
  }
  EXPECT_EQ(sp.size(), n0) << "reflux must not create or destroy particles";
  EXPECT_GT(refluxed, 0) << "walls were never hit — test is vacuous";
}

TEST(RefluxTest, ReemittedInward) {
  MiniPic pic(slab_grid(), reflux_x());
  pic.pusher.set_reflux_uth(0.05);
  Species sp("e", -1.0, 1.0);
  Particle p;
  p.i = pic.grid.voxel(8, 4, 4);
  p.dx = 0.9f;
  p.ux = 1.5f;
  p.w = 1e-10f;
  sp.add(p);
  std::int64_t refluxed = 0;
  for (int s = 0; s < 30; ++s) {
    pic.pusher.set_reflux_uth(0.05);
    refluxed += pic.step({&sp}).refluxed;
  }
  ASSERT_GT(refluxed, 0);
  ASSERT_EQ(sp.size(), 1u);
  // Still inside the domain, and now thermal instead of a 1.5c beam.
  const auto c = pic.grid.voxel_coords(sp[0].i);
  EXPECT_TRUE(pic.grid.is_interior(c[0], c[1], c[2]));
  EXPECT_LT(std::abs(sp[0].ux), 0.5f);
}

TEST(RefluxTest, WallKeepsPlasmaThermal) {
  // A bounded thermal plasma in contact with same-temperature walls must
  // stay near its temperature (no wall heating/cooling pathology).
  MiniPic pic(slab_grid(), reflux_x());
  const double uth = 0.15;
  Species sp("e", -1.0, 1.0);
  LoadConfig cfg;
  cfg.ppc = 16;
  cfg.uth = uth;
  load_uniform(sp, pic.grid, cfg);
  const double ke0 = sp.kinetic_energy();
  for (int s = 0; s < 100; ++s) {
    pic.pusher.set_reflux_uth(uth);
    pic.step({&sp});
  }
  EXPECT_NEAR(sp.kinetic_energy(), ke0, 0.25 * ke0);
}

TEST(RefluxTest, VersusAbsorbKeepsDensity) {
  // Same hot plasma, reflux vs absorb walls: absorb drains particles,
  // reflux holds them.
  auto run = [](ParticleBc wall, double* final_fraction) {
    ParticleBcSpec bc = periodic_particles();
    bc[grid::kFaceXLo] = wall;
    bc[grid::kFaceXHi] = wall;
    MiniPic pic(slab_grid(), bc);
    pic.pusher.set_reflux_uth(0.3);
    Species sp("e", -1.0, 1.0);
    LoadConfig cfg;
    cfg.ppc = 8;
    cfg.uth = 0.3;
    load_uniform(sp, pic.grid, cfg);
    const double n0 = double(sp.size());
    for (int s = 0; s < 60; ++s) {
      pic.pusher.set_reflux_uth(0.3);
      pic.step({&sp});
    }
    *final_fraction = double(sp.size()) / n0;
  };
  double kept_reflux = 0, kept_absorb = 0;
  run(ParticleBc::kReflux, &kept_reflux);
  run(ParticleBc::kAbsorb, &kept_absorb);
  EXPECT_EQ(kept_reflux, 1.0);
  EXPECT_LT(kept_absorb, 0.95);
}

TEST(RefluxTest, DeckIntegration) {
  // Reflux configured through the simulation driver.
  sim::Deck d;
  d.grid = slab_grid();
  d.particle_bc = reflux_x();
  sim::SpeciesConfig e;
  e.name = "electron";
  e.q = -1;
  e.m = 1;
  e.load.ppc = 8;
  e.load.uth = 0.3;
  d.species.push_back(e);
  sim::Simulation sim(d);
  sim.initialize();
  const auto n0 = sim.global_particle_count();
  sim.run(40);
  EXPECT_EQ(sim.global_particle_count(), n0);
  EXPECT_GT(sim.particle_stats().refluxed, 0);
}

}  // namespace
}  // namespace minivpic::particles
