#include "particles/push.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "harness.hpp"
#include "util/error.hpp"
#include "util/math.hpp"

namespace minivpic::particles {
namespace {

using testing::MiniPic;
using testing::cube_grid;

/// Fills every voxel (ghosts included) with uniform fields.
void set_uniform_fields(grid::FieldArray& f, float ex, float ey, float ez,
                        float cbx, float cby, float cbz) {
  const auto& g = f.grid();
  for (int k = 0; k <= g.nz() + 1; ++k)
    for (int j = 0; j <= g.ny() + 1; ++j)
      for (int i = 0; i <= g.nx() + 1; ++i) {
        f.ex(i, j, k) = ex;
        f.ey(i, j, k) = ey;
        f.ez(i, j, k) = ez;
        f.cbx(i, j, k) = cbx;
        f.cby(i, j, k) = cby;
        f.cbz(i, j, k) = cbz;
      }
}

/// Global position of a particle.
std::array<double, 3> position(const grid::LocalGrid& g, const Particle& p) {
  const auto c = g.voxel_coords(p.i);
  return {g.node_x(c[0]) + 0.5 * (1.0 + p.dx) * g.dx(),
          g.node_y(c[1]) + 0.5 * (1.0 + p.dy) * g.dy(),
          g.node_z(c[2]) + 0.5 * (1.0 + p.dz) * g.dz()};
}

Particle test_particle(const grid::LocalGrid& g, int ci, int cj, int ck,
                       float ux, float uy, float uz) {
  Particle p;
  p.i = g.voxel(ci, cj, ck);
  p.ux = ux;
  p.uy = uy;
  p.uz = uz;
  p.w = 1e-10f;  // negligible self-fields
  return p;
}

TEST(PushTest, FreeStreamingAdvancesAtVdt) {
  MiniPic pic(cube_grid(8, 0.5));
  Species sp("e", -1.0, 1.0);
  const float ux = 0.5f;
  sp.add(test_particle(pic.grid, 2, 4, 4, ux, 0, 0));
  const auto x0 = position(pic.grid, sp[0]);
  const double v = ux / std::sqrt(1.0 + ux * ux);
  const int steps = 5;
  for (int s = 0; s < steps; ++s) pic.step({&sp});
  const auto x1 = position(pic.grid, sp[0]);
  EXPECT_NEAR(x1[0] - x0[0], v * steps * pic.grid.dt(), 1e-5);
  EXPECT_NEAR(x1[1], x0[1], 1e-6);
  EXPECT_NEAR(x1[2], x0[2], 1e-6);
}

TEST(PushTest, CellCrossingsCountedAndPositionExact) {
  MiniPic pic(cube_grid(8, 0.5));
  Species sp("e", -1.0, 1.0);
  const float ux = 2.0f;  // v ~ 0.894c; crosses a cell in ~2 steps
  sp.add(test_particle(pic.grid, 2, 4, 4, ux, 0, 0));
  const auto x0 = position(pic.grid, sp[0]);
  const double v = ux / std::sqrt(1.0 + ux * ux);
  std::int64_t crossings = 0;
  const int steps = 6;
  for (int s = 0; s < steps; ++s) crossings += pic.step({&sp}).crossings;
  EXPECT_GT(crossings, 0);
  const auto x1 = position(pic.grid, sp[0]);
  EXPECT_NEAR(x1[0] - x0[0], v * steps * pic.grid.dt(), 1e-5);
}

TEST(PushTest, PeriodicWrapKeepsParticleInDomain) {
  MiniPic pic(cube_grid(4, 0.5));
  Species sp("e", -1.0, 1.0);
  sp.add(test_particle(pic.grid, 4, 2, 2, 3.0f, 0, 0));
  for (int s = 0; s < 40; ++s) pic.step({&sp});
  ASSERT_EQ(sp.size(), 1u);
  const auto c = pic.grid.voxel_coords(sp[0].i);
  EXPECT_TRUE(pic.grid.is_interior(c[0], c[1], c[2]));
  EXPECT_LE(std::abs(sp[0].dx), 1.0f);
}

TEST(PushTest, UniformEImpulseExact) {
  // With pure E the two half kicks sum to exactly q E dt per step.
  MiniPic pic(cube_grid(8, 0.5));
  set_uniform_fields(pic.fields, 0.01f, 0, 0, 0, 0, 0);
  Species sp("e", -1.0, 1.0);
  sp.add(test_particle(pic.grid, 4, 4, 4, 0, 0, 0));
  const int steps = 10;
  for (int s = 0; s < steps; ++s) pic.step({&sp});
  const double expect = -1.0 * 0.01 * pic.grid.dt() * steps;
  EXPECT_NEAR(sp[0].ux, expect, 1e-6);
  EXPECT_NEAR(sp[0].uy, 0.0, 1e-7);
}

TEST(PushTest, RelativisticConstantForce) {
  // Momentum grows linearly in lab time even relativistically.
  MiniPic pic(cube_grid(8, 0.5));
  set_uniform_fields(pic.fields, 0, -0.5f, 0, 0, 0, 0);  // strong E_y
  Species sp("e", -1.0, 1.0);
  sp.add(test_particle(pic.grid, 4, 4, 4, 0, 0, 0));
  const int steps = 30;
  for (int s = 0; s < steps; ++s) pic.step({&sp});
  const double expect = 0.5 * pic.grid.dt() * steps;  // q E = (-1)(-0.5)
  EXPECT_NEAR(sp[0].uy / expect, 1.0, 1e-5);
  EXPECT_GT(gamma_of_u(sp[0].ux, sp[0].uy, sp[0].uz), 1.9);
}

TEST(PushTest, GyrationConservesEnergy) {
  MiniPic pic(cube_grid(8, 0.5));
  set_uniform_fields(pic.fields, 0, 0, 0, 0, 0, 0.2f);
  Species sp("e", -1.0, 1.0);
  sp.add(test_particle(pic.grid, 4, 4, 4, 0.3f, 0, 0));
  const double u2_0 = 0.3 * 0.3;
  for (int s = 0; s < 1000; ++s) pic.step({&sp});
  ASSERT_EQ(sp.size(), 1u);
  const double u2 =
      double(sp[0].ux) * sp[0].ux + double(sp[0].uy) * sp[0].uy +
      double(sp[0].uz) * sp[0].uz;
  EXPECT_NEAR(u2 / u2_0, 1.0, 1e-4);
  EXPECT_NEAR(sp[0].uz, 0.0, 1e-6);  // motion stays in the plane
}

TEST(PushTest, GyrationFrequencyMatchesRelativisticCyclotron) {
  MiniPic pic(cube_grid(8, 0.5));
  const float b0 = 0.15f;
  set_uniform_fields(pic.fields, 0, 0, 0, 0, 0, b0);
  Species sp("e", -1.0, 1.0);
  const float u0 = 0.4f;
  sp.add(test_particle(pic.grid, 4, 4, 4, u0, 0, 0));
  // Accumulate the rotation angle of u over many steps.
  double angle = 0;
  double prev = std::atan2(sp[0].uy, sp[0].ux);
  const int steps = 400;
  for (int s = 0; s < steps; ++s) {
    pic.step({&sp});
    double a = std::atan2(sp[0].uy, sp[0].ux);
    double d = a - prev;
    while (d > std::numbers::pi) d -= 2 * std::numbers::pi;
    while (d < -std::numbers::pi) d += 2 * std::numbers::pi;
    angle += d;
    prev = a;
  }
  const double gamma = std::sqrt(1.0 + u0 * u0);
  const double wc = b0 / gamma;  // |q| B / (gamma m), q = -1 -> rotation sign
  EXPECT_NEAR(std::abs(angle), wc * steps * pic.grid.dt(),
              2e-3 * wc * steps * pic.grid.dt());
  // Electron in +z B field rotates in the +phi... sign check: q<0 flips.
  EXPECT_GT(angle, 0.0);
}

TEST(PushTest, ExBDriftVelocity) {
  MiniPic pic(cube_grid(8, 1.0));
  const float e0 = 0.02f, b0 = 0.2f;
  set_uniform_fields(pic.fields, 0, e0, 0, 0, 0, b0);
  Species sp("e", -1.0, 1.0);
  sp.add(test_particle(pic.grid, 4, 4, 4, 0, 0, 0));
  // Drift v = E x B / B^2 = (e0 * b0, 0, 0)/b0^2 -> vx = e0/b0 = 0.1.
  const auto x0 = position(pic.grid, sp[0]);
  // Integrate over an integer number of gyroperiods to average the orbit.
  const double wc = b0;  // non-relativistic
  const int steps_per_period = int(2 * std::numbers::pi / (wc * pic.grid.dt()));
  const int periods = 3;
  double x_unwrapped = x0[0];
  double last_x = x0[0];
  for (int s = 0; s < steps_per_period * periods; ++s) {
    pic.step({&sp});
    const double x = position(pic.grid, sp[0])[0];
    double dx = x - last_x;
    const double lx = 8.0;  // domain length
    if (dx > lx / 2) dx -= lx;
    if (dx < -lx / 2) dx += lx;
    x_unwrapped += dx;
    last_x = x;
  }
  const double t = steps_per_period * periods * pic.grid.dt();
  // Tolerance covers the fractional-gyroperiod truncation of the window.
  EXPECT_NEAR((x_unwrapped - x0[0]) / t, e0 / b0, 0.05 * e0 / b0);
}

TEST(PushTest, ReflectingWallBouncesParticle) {
  auto gg = cube_grid(8, 0.5);
  gg.boundary = grid::lpi_boundaries();
  ParticleBcSpec pbc = periodic_particles();
  pbc[grid::kFaceXLo] = ParticleBc::kReflect;
  pbc[grid::kFaceXHi] = ParticleBc::kReflect;
  MiniPic pic(gg, pbc);
  Species sp("e", -1.0, 1.0);
  sp.add(test_particle(pic.grid, 2, 4, 4, -1.5f, 0.1f, 0));
  std::int64_t reflected = 0;
  for (int s = 0; s < 30; ++s) reflected += pic.step({&sp}).reflected;
  ASSERT_EQ(sp.size(), 1u);
  EXPECT_GT(reflected, 0);
  // Speed is conserved by specular reflection.
  EXPECT_NEAR(std::abs(sp[0].ux), 1.5, 1e-4);
  EXPECT_NEAR(sp[0].uy, 0.1, 1e-5);
  const auto c = pic.grid.voxel_coords(sp[0].i);
  EXPECT_TRUE(pic.grid.is_interior(c[0], c[1], c[2]));
}

TEST(PushTest, AbsorbingWallRemovesParticle) {
  auto gg = cube_grid(8, 0.5);
  gg.boundary = grid::lpi_boundaries();
  MiniPic pic(gg, lpi_particles());
  Species sp("e", -1.0, 1.0);
  sp.add(test_particle(pic.grid, 7, 4, 4, 2.0f, 0, 0));   // heads for +x wall
  sp.add(test_particle(pic.grid, 4, 4, 4, 0.0f, 0.1f, 0));  // stays
  std::int64_t absorbed = 0;
  for (int s = 0; s < 20; ++s) absorbed += pic.step({&sp}).absorbed;
  EXPECT_EQ(absorbed, 1);
  EXPECT_EQ(sp.size(), 1u);
  EXPECT_NEAR(sp[0].uy, 0.1, 1e-5);
}

TEST(PushTest, BcValidation) {
  // Reflect on a periodic axis is a configuration error.
  const grid::LocalGrid g(cube_grid(4, 0.5));
  ParticleBcSpec pbc = periodic_particles();
  pbc[grid::kFaceXLo] = ParticleBc::kReflect;
  EXPECT_THROW(Pusher(g, pbc), Error);
  // Periodic particles on an absorbing field boundary likewise.
  auto gg = cube_grid(4, 0.5);
  gg.boundary = grid::lpi_boundaries();
  const grid::LocalGrid g2(gg);
  EXPECT_THROW(Pusher(g2, periodic_particles()), Error);
  EXPECT_NO_THROW(Pusher(g2, lpi_particles()));
}

TEST(PushTest, DiagonalCornerCrossing) {
  // A particle aimed at a cell corner crosses three faces in one step.
  MiniPic pic(cube_grid(4, 0.5));
  Species sp("e", -1.0, 1.0);
  Particle p = test_particle(pic.grid, 2, 2, 2, 4.0f, 4.0f, 4.0f);
  p.dx = p.dy = p.dz = 0.9f;
  sp.add(p);
  const auto res = pic.step({&sp});
  EXPECT_GE(res.crossings, 3);
  ASSERT_EQ(sp.size(), 1u);
  const auto c = pic.grid.voxel_coords(sp[0].i);
  EXPECT_TRUE(pic.grid.is_interior(c[0], c[1], c[2]));
}

TEST(PushTest, CenterUncenterRoundTrip) {
  MiniPic pic(cube_grid(8, 0.5));
  set_uniform_fields(pic.fields, 0.01f, -0.02f, 0.005f, 0.1f, 0.05f, -0.08f);
  pic.interp.load(pic.fields);
  Species sp("e", -1.0, 1.0);
  sp.add(test_particle(pic.grid, 4, 4, 4, 0.3f, -0.2f, 0.1f));
  const Particle orig = sp[0];
  uncenter_p(sp, pic.interp, pic.grid);
  EXPECT_NE(sp[0].ux, orig.ux);  // something happened
  center_p(sp, pic.interp, pic.grid);
  EXPECT_NEAR(sp[0].ux, orig.ux, 2e-6);
  EXPECT_NEAR(sp[0].uy, orig.uy, 2e-6);
  EXPECT_NEAR(sp[0].uz, orig.uz, 2e-6);
}

TEST(PushTest, FlopCountDocumented) {
  EXPECT_GT(Pusher::flops_per_particle(), 100.0);
  EXPECT_LT(Pusher::flops_per_particle(), 400.0);
}

}  // namespace
}  // namespace minivpic::particles
