// The defining invariant of the VPIC deposition scheme: the deposited
// current satisfies the discrete continuity equation exactly, so the Gauss
// residual  div E - rho  at every node is a constant of the motion (to
// single-precision round-off), no matter how particles move or cross cells.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "harness.hpp"
#include "util/rng.hpp"

namespace minivpic::particles {
namespace {

using testing::MiniPic;
using testing::cube_grid;

/// Gauss residual (div E - rho) at every interior node.
std::vector<double> gauss_residual(const grid::FieldArray& f) {
  const auto& g = f.grid();
  std::vector<double> r;
  r.reserve(std::size_t(g.num_cells()));
  for (int k = 1; k <= g.nz(); ++k)
    for (int j = 1; j <= g.ny(); ++j)
      for (int i = 1; i <= g.nx(); ++i)
        r.push_back((double(f.ex(i, j, k)) - f.ex(i - 1, j, k)) / g.dx() +
                    (double(f.ey(i, j, k)) - f.ey(i, j - 1, k)) / g.dy() +
                    (double(f.ez(i, j, k)) - f.ez(i, j, k - 1)) / g.dz() -
                    f.rhof(i, j, k));
  return r;
}

/// rho must be deposited for the residual to mean anything; MiniPic::step
/// already deposits rho for the post-push positions.
double max_residual_drift(MiniPic& pic, std::vector<Species*> species,
                          int steps) {
  // Establish the t=0 residual: deposit rho for the initial positions.
  pic.fields.clear_sources();
  for (Species* sp : species) accumulate_rho(*sp, pic.fields);
  pic.halo.reduce_sources(pic.fields);
  const auto r0 = gauss_residual(pic.fields);
  double drift = 0;
  for (int s = 0; s < steps; ++s) {
    pic.step(species);
    const auto r = gauss_residual(pic.fields);
    for (std::size_t n = 0; n < r.size(); ++n)
      drift = std::max(drift, std::abs(r[n] - r0[n]));
  }
  return drift;
}

TEST(ChargeConservation, ColdRandomPlasma) {
  MiniPic pic(cube_grid(6, 0.5));
  Species sp("e", -1.0, 1.0);
  LoadConfig cfg;
  cfg.ppc = 8;
  cfg.uth = 0.0;
  cfg.drift = {0.2, -0.1, 0.05};
  load_uniform(sp, pic.grid, cfg);
  EXPECT_LT(max_residual_drift(pic, {&sp}, 10), 2e-4);
}

TEST(ChargeConservation, WarmPlasmaManyCrossings) {
  MiniPic pic(cube_grid(6, 0.5));
  Species sp("e", -1.0, 1.0);
  LoadConfig cfg;
  cfg.ppc = 16;
  cfg.uth = 0.5;  // hot: many cell crossings per step
  load_uniform(sp, pic.grid, cfg);
  EXPECT_LT(max_residual_drift(pic, {&sp}, 10), 5e-4);
}

TEST(ChargeConservation, RelativisticBeam) {
  MiniPic pic(cube_grid(6, 0.5));
  Species sp("e", -1.0, 1.0);
  LoadConfig cfg;
  cfg.ppc = 8;
  cfg.uth = 0.1;
  cfg.drift = {3.0, 0, 0};  // ultrarelativistic along x
  load_uniform(sp, pic.grid, cfg);
  EXPECT_LT(max_residual_drift(pic, {&sp}, 10), 5e-4);
}

TEST(ChargeConservation, TwoSpeciesWithFields) {
  MiniPic pic(cube_grid(6, 0.5));
  // Seed a nontrivial electromagnetic field so forces act on particles.
  Rng rng(3);
  for (int k = 1; k <= 6; ++k)
    for (int j = 1; j <= 6; ++j)
      for (int i = 1; i <= 6; ++i) {
        pic.fields.ey(i, j, k) = float(0.05 * rng.normal());
        pic.fields.cbz(i, j, k) = float(0.05 * rng.normal());
      }
  pic.solver.refresh_all(pic.fields);
  Species electrons("e", -1.0, 1.0);
  Species ions("i", +1.0, 100.0);
  LoadConfig cfg;
  cfg.ppc = 8;
  cfg.uth = 0.1;
  load_uniform(electrons, pic.grid, cfg);
  cfg.uth = 0.01;
  load_uniform(ions, pic.grid, cfg);
  EXPECT_LT(max_residual_drift(pic, {&electrons, &ions}, 10), 5e-4);
}

TEST(ChargeConservation, NeutralPairStartsGaussClean) {
  // Electrons and ions loaded with the same seed share positions, so the
  // initial rho vanishes node-by-node and E = 0 is self-consistent.
  MiniPic pic(cube_grid(6, 0.5));
  Species electrons("e", -1.0, 1.0);
  Species ions("i", +1.0, 1836.0);
  LoadConfig cfg;
  cfg.ppc = 8;
  cfg.uth = 0;
  load_uniform(electrons, pic.grid, cfg);
  load_uniform(ions, pic.grid, cfg);
  pic.fields.clear_sources();
  accumulate_rho(electrons, pic.fields);
  accumulate_rho(ions, pic.fields);
  pic.halo.reduce_sources(pic.fields);
  for (double r : gauss_residual(pic.fields))
    EXPECT_NEAR(r, 0.0, 1e-5);
}

TEST(ChargeConservation, TotalChargeInvariant) {
  MiniPic pic(cube_grid(6, 0.5));
  Species sp("e", -1.0, 1.0);
  LoadConfig cfg;
  cfg.ppc = 8;
  cfg.uth = 0.3;
  load_uniform(sp, pic.grid, cfg);
  const double q0 = sp.charge();
  for (int s = 0; s < 20; ++s) pic.step({&sp});
  EXPECT_NEAR(sp.charge(), q0, 1e-6 * std::abs(q0));
  // And the deposited rho integrates to the same total.
  double rho_total = 0;
  for (int k = 1; k <= 6; ++k)
    for (int j = 1; j <= 6; ++j)
      for (int i = 1; i <= 6; ++i) rho_total += pic.fields.rhof(i, j, k);
  rho_total *= pic.grid.cell_volume();
  EXPECT_NEAR(rho_total, q0, 1e-4 * std::abs(q0));
}

}  // namespace
}  // namespace minivpic::particles
