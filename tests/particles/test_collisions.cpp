#include "particles/collisions.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "particles/loader.hpp"
#include "util/error.hpp"
#include "util/math.hpp"

namespace minivpic::particles {
namespace {

grid::GlobalGrid cube(int n, double h = 0.5) {
  grid::GlobalGrid g;
  g.nx = g.ny = g.nz = n;
  g.dx = g.dy = g.dz = h;
  return g;
}

std::array<double, 4> momentum_and_ke(const Species& sp) {
  std::array<double, 4> out{0, 0, 0, 0};
  for (const Particle& p : sp.particles()) {
    out[0] += double(p.w) * sp.m() * p.ux;
    out[1] += double(p.w) * sp.m() * p.uy;
    out[2] += double(p.w) * sp.m() * p.uz;
    out[3] += 0.5 * double(p.w) * sp.m() *
              (double(p.ux) * p.ux + double(p.uy) * p.uy + double(p.uz) * p.uz);
  }
  return out;
}

TEST(CollisionsTest, ZeroRateIsNoop) {
  const grid::LocalGrid g(cube(4));
  Species sp("e", -1.0, 1.0);
  LoadConfig cfg;
  cfg.ppc = 8;
  cfg.uth = 0.1;
  load_uniform(sp, g, cfg);
  sp.sort(g);
  const Particle p0 = sp[10];
  const auto st = collide_intraspecies(sp, g, 0.0, 0.1, 1, 0);
  EXPECT_EQ(st.pairs, 0);
  EXPECT_EQ(sp[10].ux, p0.ux);
}

TEST(CollisionsTest, ParameterValidation) {
  const grid::LocalGrid g(cube(4));
  Species sp("e", -1.0, 1.0);
  EXPECT_THROW(collide_intraspecies(sp, g, -1.0, 0.1, 1, 0), Error);
  EXPECT_THROW(collide_intraspecies(sp, g, 1.0, 0.0, 1, 0), Error);
  Species b("i", 1.0, 1836.0);
  EXPECT_THROW(collide_interspecies(sp, sp, g, 1.0, 0.1, 1, 0), Error);
  EXPECT_NO_THROW(collide_interspecies(sp, b, g, 1.0, 0.1, 1, 0));
}

TEST(CollisionsTest, ConservesMomentumAndEnergyEqualWeights) {
  const grid::LocalGrid g(cube(4));
  Species sp("e", -1.0, 1.0);
  LoadConfig cfg;
  cfg.ppc = 16;  // even count per cell: pure pair path, exact conservation
  cfg.uth = 0.1;
  load_uniform(sp, g, cfg);
  sp.sort(g);
  const auto before = momentum_and_ke(sp);
  const auto st = collide_intraspecies(sp, g, 1e-4, 0.5, 42, 3);
  EXPECT_GT(st.pairs, 0);
  EXPECT_GT(st.scattered, 0);
  const auto after = momentum_and_ke(sp);
  for (int c = 0; c < 3; ++c)
    EXPECT_NEAR(after[std::size_t(c)], before[std::size_t(c)], 2e-5)
        << "momentum component " << c;
  EXPECT_NEAR(after[3], before[3], 2e-5 * std::max(before[3], 1.0));
}

TEST(CollisionsTest, PreservesRelativeSpeed) {
  // One isolated pair: |u_rel| is invariant under the scatter rotation.
  const grid::LocalGrid g(cube(4));
  Species sp("e", -1.0, 1.0);
  Particle a, b;
  a.i = b.i = g.voxel(2, 2, 2);
  a.ux = 0.3f;
  a.uy = 0.1f;
  a.w = 1.0f;
  b.ux = -0.2f;
  b.uz = 0.15f;
  b.w = 1.0f;
  sp.add(a);
  sp.add(b);
  const double u0 = std::hypot(0.5, 0.1, -0.15);
  collide_intraspecies(sp, g, 1e-3, 1.0, 9, 0);
  const double u1 = std::hypot(double(sp[0].ux) - sp[1].ux,
                               double(sp[0].uy) - sp[1].uy,
                               double(sp[0].uz) - sp[1].uz);
  EXPECT_NEAR(u1, u0, 1e-6);
  // Something actually rotated.
  EXPECT_TRUE(sp[0].ux != a.ux || sp[0].uy != a.uy || sp[0].uz != a.uz);
}

TEST(CollisionsTest, IsotropizesAnisotropicPlasma) {
  // Tz >> Tx,y must relax toward isotropy — the defining test of a Coulomb
  // collision operator.
  const grid::LocalGrid g(cube(4, 1.0));
  Species sp("e", -1.0, 1.0);
  LoadConfig cfg;
  cfg.ppc = 64;
  cfg.uth3 = {0.05, 0.05, 0.2};
  load_uniform(sp, g, cfg);
  sp.sort(g);
  auto anisotropy = [&sp] {
    double tz = 0, tp = 0;
    for (const Particle& p : sp.particles()) {
      tz += double(p.uz) * p.uz;
      tp += 0.5 * (double(p.ux) * p.ux + double(p.uy) * p.uy);
    }
    return tz / tp;
  };
  const double a0 = anisotropy();
  ASSERT_GT(a0, 8.0);
  for (int s = 0; s < 60; ++s) collide_intraspecies(sp, g, 2e-4, 0.5, 5, s);
  const double a1 = anisotropy();
  EXPECT_LT(a1, 0.7 * a0) << "collisions failed to isotropize";
  EXPECT_GT(a1, 0.9);  // must not overshoot below isotropy
}

TEST(CollisionsTest, IsotropizationRateScalesWithNu) {
  auto relax = [](double nu) {
    const grid::LocalGrid g(cube(4, 1.0));
    Species sp("e", -1.0, 1.0);
    LoadConfig cfg;
    cfg.ppc = 64;
    cfg.uth3 = {0.05, 0.05, 0.2};
    load_uniform(sp, g, cfg);
    sp.sort(g);
    for (int s = 0; s < 20; ++s) collide_intraspecies(sp, g, nu, 0.5, 5, s);
    double tz = 0, tp = 0;
    for (const Particle& p : sp.particles()) {
      tz += double(p.uz) * p.uz;
      tp += 0.5 * (double(p.ux) * p.ux + double(p.uy) * p.uy);
    }
    return tz / tp;
  };
  EXPECT_LT(relax(4e-4), relax(1e-4));
}

TEST(CollisionsTest, InterspeciesDragsBeamOnHeavyBackground) {
  // A cold electron beam drifting through heavy ions: pitch-angle
  // scattering isotropizes the beam while the ions barely move.
  const grid::LocalGrid g(cube(4, 1.0));
  Species e("e", -1.0, 1.0);
  Species ion("i", +1.0, 1836.0);
  LoadConfig cfg;
  cfg.ppc = 32;
  cfg.uth = 0.002;
  cfg.drift = {0.1, 0, 0};
  load_uniform(e, g, cfg);
  cfg.drift = {0, 0, 0};
  cfg.uth = 0.0001;
  load_uniform(ion, g, cfg);
  e.sort(g);
  ion.sort(g);
  auto perp_spread = [&e] {
    double s = 0;
    for (const Particle& p : e.particles())
      s += double(p.uy) * p.uy + double(p.uz) * p.uz;
    return s / double(e.size());
  };
  const double s0 = perp_spread();
  for (int s = 0; s < 30; ++s)
    collide_interspecies(e, ion, g, 2e-4, 0.5, 7, s);
  EXPECT_GT(perp_spread(), 10 * std::max(s0, 1e-12))
      << "beam failed to scatter";
  // Ion kinetic energy stays tiny (mass ratio).
  EXPECT_LT(ion.kinetic_energy(), 0.2 * e.kinetic_energy());
}

TEST(CollisionsTest, OddCountTripleHandled) {
  const grid::LocalGrid g(cube(2, 1.0));
  Species sp("e", -1.0, 1.0);
  for (int n = 0; n < 3; ++n) {  // exactly 3 in one cell
    Particle p;
    p.i = g.voxel(1, 1, 1);
    p.ux = 0.1f * float(n - 1);
    p.uy = 0.05f * float(n);
    p.w = 1.0f;
    sp.add(p);
  }
  const auto before = momentum_and_ke(sp);
  const auto st = collide_intraspecies(sp, g, 1e-3, 1.0, 3, 1);
  EXPECT_EQ(st.pairs, 3);  // the TA triple
  const auto after = momentum_and_ke(sp);
  for (int c = 0; c < 3; ++c)
    EXPECT_NEAR(after[std::size_t(c)], before[std::size_t(c)], 1e-7);
  EXPECT_NEAR(after[3], before[3], 1e-7);
}

TEST(CollisionsTest, DeterministicGivenSeedAndStep) {
  auto run = [](std::uint64_t seed) {
    const grid::LocalGrid g(cube(3));
    Species sp("e", -1.0, 1.0);
    LoadConfig cfg;
    cfg.ppc = 8;
    cfg.uth = 0.1;
    load_uniform(sp, g, cfg);
    sp.sort(g);
    collide_intraspecies(sp, g, 1e-4, 0.5, seed, 2);
    double checksum = 0;
    for (const Particle& p : sp.particles()) checksum += p.ux;
    return checksum;
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));
}

}  // namespace
}  // namespace minivpic::particles
