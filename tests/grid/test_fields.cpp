#include "grid/fields.hpp"

#include <gtest/gtest.h>

namespace minivpic::grid {
namespace {

GlobalGrid cube(int n) {
  GlobalGrid g;
  g.nx = g.ny = g.nz = n;
  g.dx = g.dy = g.dz = 0.5;
  return g;
}

TEST(FieldArrayTest, StartsZeroed) {
  const LocalGrid g(cube(4));
  FieldArray f(g);
  for (int k = 0; k <= 5; ++k)
    for (int j = 0; j <= 5; ++j)
      for (int i = 0; i <= 5; ++i) {
        ASSERT_EQ(f.ex(i, j, k), 0.0f);
        ASSERT_EQ(f.cbz(i, j, k), 0.0f);
        ASSERT_EQ(f.jfy(i, j, k), 0.0f);
        ASSERT_EQ(f.rhof(i, j, k), 0.0f);
      }
}

TEST(FieldArrayTest, AccessorsAddressDistinctStorage) {
  const LocalGrid g(cube(4));
  FieldArray f(g);
  f.ex(2, 3, 1) = 1.0f;
  f.ey(2, 3, 1) = 2.0f;
  f.ez(2, 3, 1) = 3.0f;
  f.cbx(2, 3, 1) = 4.0f;
  f.cby(2, 3, 1) = 5.0f;
  f.cbz(2, 3, 1) = 6.0f;
  f.jfx(2, 3, 1) = 7.0f;
  f.jfy(2, 3, 1) = 8.0f;
  f.jfz(2, 3, 1) = 9.0f;
  f.rhof(2, 3, 1) = 10.0f;
  EXPECT_EQ(f.ex(2, 3, 1), 1.0f);
  EXPECT_EQ(f.ey(2, 3, 1), 2.0f);
  EXPECT_EQ(f.ez(2, 3, 1), 3.0f);
  EXPECT_EQ(f.cbx(2, 3, 1), 4.0f);
  EXPECT_EQ(f.cby(2, 3, 1), 5.0f);
  EXPECT_EQ(f.cbz(2, 3, 1), 6.0f);
  EXPECT_EQ(f.jfx(2, 3, 1), 7.0f);
  EXPECT_EQ(f.jfy(2, 3, 1), 8.0f);
  EXPECT_EQ(f.jfz(2, 3, 1), 9.0f);
  EXPECT_EQ(f.rhof(2, 3, 1), 10.0f);
  // Neighbors untouched.
  EXPECT_EQ(f.ex(1, 3, 1), 0.0f);
  EXPECT_EQ(f.ex(2, 2, 1), 0.0f);
}

TEST(FieldArrayTest, IdxMatchesGridVoxel) {
  const LocalGrid g(cube(5));
  FieldArray f(g);
  for (int k = 0; k <= 6; k += 3)
    for (int j = 0; j <= 6; j += 2)
      for (int i = 0; i <= 6; ++i) EXPECT_EQ(f.idx(i, j, k), g.voxel(i, j, k));
}

TEST(FieldArrayTest, ClearSourcesKeepsFields) {
  const LocalGrid g(cube(3));
  FieldArray f(g);
  f.ex(1, 1, 1) = 5.0f;
  f.cby(2, 2, 2) = -1.0f;
  f.jfz(1, 2, 3) = 2.0f;
  f.rhof(3, 3, 3) = 0.5f;
  f.clear_sources();
  EXPECT_EQ(f.ex(1, 1, 1), 5.0f);
  EXPECT_EQ(f.cby(2, 2, 2), -1.0f);
  EXPECT_EQ(f.jfz(1, 2, 3), 0.0f);
  EXPECT_EQ(f.rhof(3, 3, 3), 0.0f);
}

TEST(FieldArrayTest, ClearAll) {
  const LocalGrid g(cube(3));
  FieldArray f(g);
  f.ey(1, 1, 1) = 5.0f;
  f.cbz(2, 2, 2) = -1.0f;
  f.clear_all();
  EXPECT_EQ(f.ey(1, 1, 1), 0.0f);
  EXPECT_EQ(f.cbz(2, 2, 2), 0.0f);
}

TEST(FieldArrayTest, BytesAccounting) {
  const LocalGrid g(cube(4));
  FieldArray f(g);
  EXPECT_EQ(f.bytes(), std::int64_t(6 * 6 * 6) * 10 * 4);
}

TEST(FieldArrayTest, SpansCoverAllVoxels) {
  const LocalGrid g(cube(2));
  FieldArray f(g);
  EXPECT_EQ(f.ex_span().size(), std::size_t(g.num_voxels()));
  f.ex_span()[std::size_t(f.idx(1, 2, 1))] = 3.0f;
  EXPECT_EQ(f.ex(1, 2, 1), 3.0f);
}

}  // namespace
}  // namespace minivpic::grid
