#include "grid/geometry.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"

namespace minivpic::grid {
namespace {

GlobalGrid cube(int n, double h = 0.5) {
  GlobalGrid g;
  g.nx = g.ny = g.nz = n;
  g.dx = g.dy = g.dz = h;
  return g;
}

TEST(GlobalGridTest, CourantDt) {
  GlobalGrid g = cube(8, 1.0);
  g.cfl = 0.5;
  EXPECT_NEAR(g.courant_dt(), 0.5 / std::sqrt(3.0), 1e-14);
  g.dx = 0.1;
  EXPECT_LT(g.courant_dt(), 0.5 * 0.1);
}

TEST(LocalGridTest, SingleRankCoversGlobal) {
  const LocalGrid g(cube(8));
  EXPECT_EQ(g.nx(), 8);
  EXPECT_EQ(g.ny(), 8);
  EXPECT_EQ(g.nz(), 8);
  EXPECT_EQ(g.offset_x(), 0);
  EXPECT_EQ(g.num_cells(), 512);
  EXPECT_EQ(g.num_voxels(), 1000);
}

TEST(LocalGridTest, DerivedTimestepRespectsCfl) {
  GlobalGrid gg = cube(4, 0.25);
  gg.cfl = 0.9;
  const LocalGrid g(gg);
  EXPECT_NEAR(g.dt(), 0.9 * 0.25 / std::sqrt(3.0), 1e-14);
}

TEST(LocalGridTest, ExplicitTimestepValidated) {
  GlobalGrid gg = cube(4, 0.25);
  gg.dt = 1.0;  // way over the Courant limit
  EXPECT_THROW(LocalGrid{gg}, Error);
  gg.dt = 0.05;
  EXPECT_NO_THROW(LocalGrid{gg});
}

TEST(LocalGridTest, VoxelIndexRoundTrip) {
  const LocalGrid g(cube(6));
  for (int k = 0; k <= 7; ++k)
    for (int j = 0; j <= 7; ++j)
      for (int i = 0; i <= 7; ++i) {
        const auto v = g.voxel(i, j, k);
        const auto c = g.voxel_coords(v);
        EXPECT_EQ(c[0], i);
        EXPECT_EQ(c[1], j);
        EXPECT_EQ(c[2], k);
      }
}

TEST(LocalGridTest, VoxelXFastest) {
  const LocalGrid g(cube(4));
  EXPECT_EQ(g.voxel(1, 0, 0) - g.voxel(0, 0, 0), 1);
  EXPECT_EQ(g.voxel(0, 1, 0) - g.voxel(0, 0, 0), g.sy());
  EXPECT_EQ(g.voxel(0, 0, 1) - g.voxel(0, 0, 0), g.sz());
}

TEST(LocalGridTest, InteriorPredicate) {
  const LocalGrid g(cube(4));
  EXPECT_TRUE(g.is_interior(1, 1, 1));
  EXPECT_TRUE(g.is_interior(4, 4, 4));
  EXPECT_FALSE(g.is_interior(0, 1, 1));
  EXPECT_FALSE(g.is_interior(5, 1, 1));
  EXPECT_FALSE(g.is_interior(1, 0, 1));
  EXPECT_FALSE(g.is_interior(1, 1, 5));
}

TEST(LocalGridTest, NodeCoordinates) {
  GlobalGrid gg = cube(4, 0.5);
  gg.x0 = -1.0;
  const LocalGrid g(gg);
  EXPECT_DOUBLE_EQ(g.node_x(1), -1.0);
  EXPECT_DOUBLE_EQ(g.node_x(5), 1.0);  // x0 + nx*dx
  EXPECT_DOUBLE_EQ(g.node_y(3), 1.0);
}

TEST(LocalGridTest, CellOfPosition) {
  GlobalGrid gg = cube(4, 0.5);
  const LocalGrid g(gg);
  EXPECT_EQ(g.cell_of_x(0.0), 1);
  EXPECT_EQ(g.cell_of_x(0.49), 1);
  EXPECT_EQ(g.cell_of_x(0.5), 2);
  EXPECT_EQ(g.cell_of_x(1.99), 4);
  EXPECT_EQ(g.cell_of_x(2.1), -1);
  EXPECT_EQ(g.cell_of_x(-0.1), -1);
}

TEST(LocalGridTest, TwoRankDecomposition) {
  const GlobalGrid gg = cube(8);
  const vmpi::CartTopology topo({2, 1, 1}, {true, true, true});
  const LocalGrid g0(gg, topo, 0);
  const LocalGrid g1(gg, topo, 1);
  EXPECT_EQ(g0.nx(), 4);
  EXPECT_EQ(g1.nx(), 4);
  EXPECT_EQ(g0.offset_x(), 0);
  EXPECT_EQ(g1.offset_x(), 4);
  EXPECT_EQ(g0.neighbor(kFaceXHi), 1);
  EXPECT_EQ(g0.neighbor(kFaceXLo), 1);  // periodic wrap
  EXPECT_EQ(g1.neighbor(kFaceXHi), 0);
  // y axis has one rank: self neighbor.
  EXPECT_EQ(g0.neighbor(kFaceYHi), 0);
}

TEST(LocalGridTest, UnevenSplit) {
  const GlobalGrid gg = cube(7);
  const vmpi::CartTopology topo({2, 1, 1}, {true, true, true});
  const LocalGrid g0(gg, topo, 0);
  const LocalGrid g1(gg, topo, 1);
  EXPECT_EQ(g0.nx() + g1.nx(), 7);
  EXPECT_EQ(g0.nx(), 4);  // earlier ranks take the remainder
  EXPECT_EQ(g1.offset_x(), 4);
  // Node coordinates must be continuous across the split.
  EXPECT_DOUBLE_EQ(g0.node_x(g0.nx() + 1), g1.node_x(1));
}

TEST(LocalGridTest, NonPeriodicGlobalFace) {
  GlobalGrid gg = cube(8);
  gg.boundary = lpi_boundaries();
  const vmpi::CartTopology topo({2, 1, 1}, {false, true, true});
  const LocalGrid g0(gg, topo, 0);
  const LocalGrid g1(gg, topo, 1);
  EXPECT_EQ(g0.neighbor(kFaceXLo), LocalGrid::kNoNeighbor);
  EXPECT_EQ(g0.neighbor(kFaceXHi), 1);
  EXPECT_EQ(g1.neighbor(kFaceXHi), LocalGrid::kNoNeighbor);
  EXPECT_TRUE(g0.on_global_boundary(kFaceXLo));
  EXPECT_FALSE(g0.on_global_boundary(kFaceXHi));
  EXPECT_TRUE(g1.on_global_boundary(kFaceXHi));
  EXPECT_EQ(g0.boundary(kFaceXLo), BoundaryKind::kAbsorbing);
}

TEST(LocalGridTest, MixedPeriodicitySpecChecked) {
  GlobalGrid gg = cube(4);
  gg.boundary[kFaceXLo] = BoundaryKind::kPec;  // x-hi still periodic: invalid
  EXPECT_THROW(LocalGrid{gg}, Error);
}

TEST(LocalGridTest, MoreRanksThanCellsRejected) {
  const GlobalGrid gg = cube(2);
  const vmpi::CartTopology topo({4, 1, 1}, {true, true, true});
  EXPECT_THROW(LocalGrid(gg, topo, 0), Error);
}

TEST(LocalGridTest, InvalidGridRejected) {
  GlobalGrid gg = cube(0);
  EXPECT_THROW(LocalGrid{gg}, Error);
  gg = cube(4);
  gg.dx = -1;
  EXPECT_THROW(LocalGrid{gg}, Error);
  gg = cube(4);
  gg.cfl = 1.5;
  EXPECT_THROW(LocalGrid{gg}, Error);
}

TEST(BoundaryFaces, FaceHelpers) {
  EXPECT_EQ(face_axis(kFaceXLo), 0);
  EXPECT_EQ(face_axis(kFaceZHi), 2);
  EXPECT_EQ(face_dir(kFaceYLo), -1);
  EXPECT_EQ(face_dir(kFaceYHi), +1);
  EXPECT_EQ(face_of(0, -1), kFaceXLo);
  EXPECT_EQ(face_of(2, +1), kFaceZHi);
}

TEST(LocalGridTest, EightRankCube) {
  const GlobalGrid gg = cube(8);
  const vmpi::CartTopology topo({2, 2, 2}, {true, true, true});
  long long cells = 0;
  for (int r = 0; r < 8; ++r) {
    const LocalGrid g(gg, topo, r);
    cells += g.num_cells();
    EXPECT_EQ(g.nranks(), 8);
    EXPECT_EQ(g.rank(), r);
  }
  EXPECT_EQ(cells, 512);
}

}  // namespace
}  // namespace minivpic::grid
