#include "grid/halo.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "vmpi/runtime.hpp"

namespace minivpic::grid {
namespace {

GlobalGrid cube(int n) {
  GlobalGrid g;
  g.nx = g.ny = g.nz = n;
  g.dx = g.dy = g.dz = 0.5;
  return g;
}

/// Distinctive value per (component, global cell) — exact in float.
float tag_value(int comp, int gi, int gj, int gk) {
  return float(comp * 500000 + (gi * 64 + gj) * 64 + gk);
}

/// Fills every component's interior with tag values in *global* cell ids.
void fill_interior(FieldArray& f, const LocalGrid& g) {
  const auto comps = em_components();
  for (std::size_t c = 0; c < comps.size(); ++c) {
    real* data = component_data(f, comps[c]);
    for (int k = 1; k <= g.nz(); ++k)
      for (int j = 1; j <= g.ny(); ++j)
        for (int i = 1; i <= g.nx(); ++i)
          data[f.idx(i, j, k)] = tag_value(int(c), g.offset_x() + i,
                                           g.offset_y() + j, g.offset_z() + k);
  }
}

/// Expected ghost value: wrap the global index periodically.
float expected_ghost(const LocalGrid& g, int comp, int li, int lj, int lk) {
  auto wrap = [](int v, int n) { return ((v - 1) % n + n) % n + 1; };
  return tag_value(comp, wrap(g.offset_x() + li, g.global_nx()),
                   wrap(g.offset_y() + lj, g.global_ny()),
                   wrap(g.offset_z() + lk, g.global_nz()));
}

void check_all_ghosts(const FieldArray& f, const LocalGrid& g) {
  const auto comps = em_components();
  for (std::size_t c = 0; c < comps.size(); ++c) {
    const real* data = component_data(f, comps[c]);
    for (int k = 0; k <= g.nz() + 1; ++k) {
      for (int j = 0; j <= g.ny() + 1; ++j) {
        for (int i = 0; i <= g.nx() + 1; ++i) {
          ASSERT_EQ(data[f.idx(i, j, k)],
                    expected_ghost(g, int(c), i, j, k))
              << "comp " << c << " at (" << i << "," << j << "," << k
              << ") rank " << g.rank();
        }
      }
    }
  }
}

TEST(HaloRefresh, SingleRankPeriodic) {
  const LocalGrid g(cube(4));
  FieldArray f(g);
  Halo halo(g, nullptr);
  fill_interior(f, g);
  halo.refresh(f, em_components());
  check_all_ghosts(f, g);
}

TEST(HaloRefresh, CornerGhostsConsistent) {
  const LocalGrid g(cube(3));
  FieldArray f(g);
  Halo halo(g, nullptr);
  fill_interior(f, g);
  halo.refresh(f, em_components());
  // Extreme corner ghost (0,0,0) wraps to interior (3,3,3).
  EXPECT_EQ(f.ex(0, 0, 0), tag_value(0, 3, 3, 3));
  EXPECT_EQ(f.ex(4, 4, 4), tag_value(0, 1, 1, 1));
  EXPECT_EQ(f.cbz(0, 4, 0), tag_value(5, 3, 1, 3));
}

class HaloMultiRank : public ::testing::TestWithParam<std::array<int, 3>> {};

TEST_P(HaloMultiRank, RefreshMatchesGlobalWrap) {
  const auto dims = GetParam();
  const int nranks = dims[0] * dims[1] * dims[2];
  const GlobalGrid gg = cube(8);
  vmpi::run(nranks, [&](vmpi::Comm& comm) {
    const vmpi::CartTopology topo(dims, {true, true, true});
    const LocalGrid g(gg, topo, comm.rank());
    FieldArray f(g);
    Halo halo(g, &comm);
    fill_interior(f, g);
    halo.refresh(f, em_components());
    check_all_ghosts(f, g);
  });
}

INSTANTIATE_TEST_SUITE_P(
    Decompositions, HaloMultiRank,
    ::testing::Values(std::array<int, 3>{2, 1, 1}, std::array<int, 3>{1, 2, 1},
                      std::array<int, 3>{1, 1, 2}, std::array<int, 3>{2, 2, 1},
                      std::array<int, 3>{2, 2, 2},
                      std::array<int, 3>{4, 1, 1}));

TEST(HaloRefresh, NonPeriodicFaceGhostUntouched) {
  GlobalGrid gg = cube(4);
  gg.boundary = lpi_boundaries();  // absorbing x, periodic y/z
  const LocalGrid g(gg);
  FieldArray f(g);
  Halo halo(g, nullptr);
  fill_interior(f, g);
  // Plant sentinels in the x ghosts; refresh must not change them.
  f.ey(0, 2, 2) = -77.0f;
  f.ey(5, 2, 2) = -88.0f;
  halo.refresh(f, em_components());
  EXPECT_EQ(f.ey(0, 2, 2), -77.0f);
  EXPECT_EQ(f.ey(5, 2, 2), -88.0f);
  // Periodic y ghosts still refreshed.
  EXPECT_EQ(f.ey(2, 0, 2), tag_value(1, 2, 4, 2));
}

TEST(HaloReduce, SingleRankPeriodicFold) {
  const LocalGrid g(cube(4));
  FieldArray f(g);
  Halo halo(g, nullptr);
  // Deposit into the high-side ghost planes as a particle at the domain
  // edge would.
  f.jfx(5, 2, 2) = 1.0f;   // x ghost -> interior (1,2,2)
  f.jfy(2, 5, 2) = 2.0f;   // y ghost -> interior (2,1,2)
  f.jfz(2, 2, 5) = 3.0f;   // z ghost -> interior (2,2,1)
  f.rhof(5, 5, 2) = 4.0f;  // xy corner ghost -> interior (1,1,2)
  f.jfx(1, 2, 2) = 0.5f;   // existing interior contribution
  halo.reduce_sources(f);
  EXPECT_EQ(f.jfx(1, 2, 2), 1.5f);
  EXPECT_EQ(f.jfy(2, 1, 2), 2.0f);
  EXPECT_EQ(f.jfz(2, 2, 1), 3.0f);
  EXPECT_EQ(f.rhof(1, 1, 2), 4.0f);
  // Ghosts zeroed afterwards.
  EXPECT_EQ(f.jfx(5, 2, 2), 0.0f);
  EXPECT_EQ(f.rhof(5, 5, 2), 0.0f);
}

TEST(HaloReduce, TripleCornerFold) {
  const LocalGrid g(cube(3));
  FieldArray f(g);
  Halo halo(g, nullptr);
  f.rhof(4, 4, 4) = 7.0f;  // xyz corner ghost
  halo.reduce_sources(f);
  EXPECT_EQ(f.rhof(1, 1, 1), 7.0f);
  EXPECT_EQ(f.rhof(4, 4, 4), 0.0f);
}

TEST(HaloReduce, MultiRankFold) {
  const GlobalGrid gg = cube(8);
  vmpi::run(2, [&](vmpi::Comm& comm) {
    const vmpi::CartTopology topo({2, 1, 1}, {true, true, true});
    const LocalGrid g(gg, topo, comm.rank());
    FieldArray f(g);
    Halo halo(g, &comm);
    // Every rank deposits into its high-x ghost plane.
    f.jfy(g.nx() + 1, 3, 3) = float(10 + comm.rank());
    halo.reduce_sources(f);
    // Rank r's ghost lands in rank (r+1)%2's interior plane 1.
    const int from = (comm.rank() + 1) % 2;
    EXPECT_EQ(f.jfy(1, 3, 3), float(10 + from));
    EXPECT_EQ(f.jfy(g.nx() + 1, 3, 3), 0.0f);
  });
}

TEST(HaloReduce, ConservesTotalCharge) {
  // Property: reduce_sources must conserve the sum over ALL voxels of rho
  // into the interior (periodic case).
  const LocalGrid g(cube(4));
  FieldArray f(g);
  Halo halo(g, nullptr);
  double before = 0;
  int val = 1;
  for (int k = 1; k <= g.nz() + 1; ++k)
    for (int j = 1; j <= g.ny() + 1; ++j)
      for (int i = 1; i <= g.nx() + 1; ++i) {
        f.rhof(i, j, k) = float(val);
        before += val;
        val = (val % 7) + 1;
      }
  halo.reduce_sources(f);
  double after = 0;
  for (int k = 1; k <= g.nz(); ++k)
    for (int j = 1; j <= g.ny(); ++j)
      for (int i = 1; i <= g.nx(); ++i) after += f.rhof(i, j, k);
  EXPECT_DOUBLE_EQ(after, before);
}

TEST(HaloConstruct, Validation) {
  const GlobalGrid gg = cube(8);
  const vmpi::CartTopology topo({2, 1, 1}, {true, true, true});
  const LocalGrid g2(gg, topo, 0);
  EXPECT_THROW(Halo(g2, nullptr), Error);  // multi-rank grid needs comm
  vmpi::run(3, [&](vmpi::Comm& comm) {
    EXPECT_THROW(Halo(g2, &comm), Error);  // size mismatch (3 vs 2)
  });
}

}  // namespace
}  // namespace minivpic::grid
