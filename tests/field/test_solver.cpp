#include "field/solver.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

#include "fft/fft.hpp"
#include "field/antenna.hpp"
#include "field/energy.hpp"

namespace minivpic::field {
namespace {

using grid::FieldArray;
using grid::GlobalGrid;
using grid::Halo;
using grid::LocalGrid;

void step(FieldSolver& solver, FieldArray& f) {
  solver.advance_b(f, 0.5);
  solver.advance_e(f);
  solver.advance_b(f, 0.5);
}

GlobalGrid box(int nx, int ny, int nz, double h) {
  GlobalGrid g;
  g.nx = nx;
  g.ny = ny;
  g.nz = nz;
  g.dx = g.dy = g.dz = h;
  return g;
}

TEST(FieldSolver, VacuumZeroStaysZero) {
  const LocalGrid g(box(8, 8, 8, 0.5));
  FieldArray f(g);
  Halo halo(g, nullptr);
  FieldSolver solver(g, &halo);
  for (int s = 0; s < 10; ++s) step(solver, f);
  EXPECT_EQ(field_energy(f).total(), 0.0);
}

TEST(FieldSolver, PlaneWaveDispersionMatchesYee) {
  // Periodic box, mode m=2 standing/traveling mix along x; the measured
  // oscillation frequency must match the Yee numerical dispersion relation
  //   sin(w dt/2)/dt = c sin(k dx/2)/dx  (1-D propagation).
  const int nx = 32;
  const double h = 0.5;
  const LocalGrid g(box(nx, 4, 4, h));
  FieldArray f(g);
  Halo halo(g, nullptr);
  FieldSolver solver(g, &halo);

  const double kx = 2.0 * std::numbers::pi * 2.0 / (nx * h);
  for (int k = 0; k <= g.nz() + 1; ++k)
    for (int j = 0; j <= g.ny() + 1; ++j)
      for (int i = 1; i <= g.nx(); ++i) {
        f.ey(i, j, k) = grid::real(0.1 * std::sin(kx * g.node_x(i)));
        f.cbz(i, j, k) =
            grid::real(0.1 * std::sin(kx * (g.node_x(i) + 0.5 * h)));
      }
  solver.refresh_all(f);

  std::vector<double> probe;
  const int steps = 1024;
  for (int s = 0; s < steps; ++s) {
    step(solver, f);
    probe.push_back(f.ey(5, 2, 2));
  }
  const auto power = fft::power_spectrum(probe);
  const std::size_t peak = fft::peak_bin(power, 1, power.size());
  const double w_meas = fft::bin_omega(peak, 2 * (power.size() - 1), g.dt());
  const double w_yee =
      2.0 / g.dt() * std::asin(g.dt() / h * std::sin(0.5 * kx * h));
  EXPECT_NEAR(w_meas, w_yee, 0.05 * w_yee);
  // And the numerical frequency is close to the physical w = c k.
  EXPECT_NEAR(w_meas, kx, 0.06 * kx);
}

TEST(FieldSolver, VacuumEnergyBounded) {
  const LocalGrid g(box(16, 8, 8, 0.5));
  FieldArray f(g);
  Halo halo(g, nullptr);
  FieldSolver solver(g, &halo);
  // Superpose a few periodic modes.
  for (int k = 1; k <= g.nz(); ++k)
    for (int j = 1; j <= g.ny(); ++j)
      for (int i = 1; i <= g.nx(); ++i) {
        const double x = g.node_x(i), y = g.node_y(j), z = g.node_z(k);
        f.ey(i, j, k) = grid::real(0.1 * std::sin(2 * std::numbers::pi * x / 8.0));
        f.ez(i, j, k) = grid::real(0.05 * std::cos(2 * std::numbers::pi * y / 4.0));
        f.ex(i, j, k) = grid::real(0.02 * std::sin(2 * std::numbers::pi * z / 4.0));
      }
  solver.refresh_all(f);
  const double e0 = field_energy(f).total();
  double emin = e0, emax = e0;
  for (int s = 0; s < 300; ++s) {
    step(solver, f);
    const double e = field_energy(f).total();
    emin = std::min(emin, e);
    emax = std::max(emax, e);
  }
  // Yee conserves a discrete energy; the naive one oscillates but must not
  // drift. Allow a small band.
  EXPECT_GT(emin, 0.90 * e0);
  EXPECT_LT(emax, 1.10 * e0);
}

TEST(FieldSolver, PecBoxTrapsEnergy) {
  GlobalGrid gg = box(16, 4, 4, 0.5);
  gg.boundary = {grid::BoundaryKind::kPec,      grid::BoundaryKind::kPec,
                 grid::BoundaryKind::kPeriodic, grid::BoundaryKind::kPeriodic,
                 grid::BoundaryKind::kPeriodic, grid::BoundaryKind::kPeriodic};
  const LocalGrid g(gg);
  FieldArray f(g);
  Halo halo(g, nullptr);
  FieldSolver solver(g, &halo);
  // Cavity mode of the PEC box: Ey ~ sin(pi (x-x_wall) / L), zero at walls.
  const double lx = 16 * 0.5;
  for (int k = 0; k <= g.nz() + 1; ++k)
    for (int j = 0; j <= g.ny() + 1; ++j)
      for (int i = 1; i <= g.nx() + 1; ++i)
        f.ey(i, j, k) =
            grid::real(0.1 * std::sin(std::numbers::pi *
                                      (g.node_x(i) - g.node_x(1)) / lx));
  solver.refresh_all(f);
  solver.boundary().capture(f);
  const double e0 = field_energy(f).total();
  double emin = e0, emax = e0;
  for (int s = 0; s < 400; ++s) {
    step(solver, f);
    const double e = field_energy(f).total();
    emin = std::min(emin, e);
    emax = std::max(emax, e);
  }
  EXPECT_GT(emin, 0.85 * e0);
  EXPECT_LT(emax, 1.15 * e0);
}

TEST(FieldSolver, MurWallsDrainPulse) {
  GlobalGrid gg = box(32, 4, 4, 0.5);
  gg.boundary = grid::lpi_boundaries();
  const LocalGrid g(gg);
  FieldArray f(g);
  Halo halo(g, nullptr);
  FieldSolver solver(g, &halo);
  LaserConfig cfg;
  cfg.omega0 = 3.0;
  cfg.a0 = 0.05;
  cfg.ramp = 3.0;
  cfg.duration = 6.0;  // short pulse
  cfg.global_plane = 4;
  LaserAntenna antenna(g, cfg);
  solver.boundary().capture(f);

  double t = 0;
  double peak = 0;
  const int steps = int(80.0 / g.dt());
  for (int s = 0; s < steps; ++s) {
    f.clear_sources();
    antenna.deposit(f, t);
    solver.advance_b(f, 0.5);
    solver.advance_e(f);
    solver.advance_b(f, 0.5);
    t += g.dt();
    peak = std::max(peak, field_energy(f).total());
  }
  // Box is 16 long; pulse fits in ~6+ramp time units, exits both walls well
  // before t = 80. First-order Mur at normal incidence absorbs >99% power.
  EXPECT_GT(peak, 0.0);
  EXPECT_LT(field_energy(f).total(), 0.02 * peak);
}

TEST(FieldSolver, SignalTravelsAtLightSpeed) {
  GlobalGrid gg = box(64, 2, 2, 0.5);
  gg.boundary = grid::lpi_boundaries();
  const LocalGrid g(gg);
  FieldArray f(g);
  Halo halo(g, nullptr);
  FieldSolver solver(g, &halo);
  LaserConfig cfg;
  cfg.omega0 = 3.0;
  cfg.a0 = 0.05;
  cfg.ramp = 2.0;
  cfg.global_plane = 2;
  LaserAntenna antenna(g, cfg);
  solver.boundary().capture(f);

  const int probe_plane = 50;  // 48 cells = 24 c/wpe from source
  const double distance = (probe_plane - cfg.global_plane) * g.dx();
  double t = 0, arrival = -1;
  while (t < 40.0) {
    f.clear_sources();
    antenna.deposit(f, t);
    solver.advance_b(f, 0.5);
    solver.advance_e(f);
    solver.advance_b(f, 0.5);
    t += g.dt();
    if (arrival < 0 && std::abs(f.ey(probe_plane, 1, 1)) > 1e-4) arrival = t;
  }
  ASSERT_GT(arrival, 0.0) << "signal never arrived";
  EXPECT_GT(arrival, 0.9 * distance);   // not superluminal
  EXPECT_LT(arrival, 1.4 * distance);   // arrives promptly
}

TEST(FieldSolver, CurrentDrivesEField) {
  // E += -dt * J: uniform J_y for one step in a periodic box.
  const LocalGrid g(box(4, 4, 4, 0.5));
  FieldArray f(g);
  Halo halo(g, nullptr);
  FieldSolver solver(g, &halo);
  for (int k = 1; k <= 4; ++k)
    for (int j = 1; j <= 4; ++j)
      for (int i = 1; i <= 4; ++i) f.jfy(i, j, k) = 2.0f;
  solver.advance_e(f);
  for (int k = 1; k <= 4; ++k)
    for (int j = 1; j <= 4; ++j)
      for (int i = 1; i <= 4; ++i)
        EXPECT_NEAR(f.ey(i, j, k), -2.0 * g.dt(), 1e-7);
}

TEST(FieldSolver, RequiresHalo) {
  const LocalGrid g(box(4, 4, 4, 0.5));
  EXPECT_THROW(FieldSolver(g, nullptr), Error);
}

TEST(FieldSolver, FlopAccountingPositive) {
  EXPECT_GT(FieldSolver::flops_per_voxel(), 0.0);
}

}  // namespace
}  // namespace minivpic::field
