#include "field/boundary_ops.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "field/antenna.hpp"
#include "field/energy.hpp"
#include "field/solver.hpp"
#include "util/error.hpp"

namespace minivpic::field {
namespace {

using grid::BoundaryKind;
using grid::FieldArray;
using grid::GlobalGrid;
using grid::Halo;
using grid::LocalGrid;

GlobalGrid slab(int nx, BoundaryKind xkind, double h = 0.5) {
  GlobalGrid g;
  g.nx = nx;
  g.ny = g.nz = 4;
  g.dx = g.dy = g.dz = h;
  g.boundary = {xkind,
                xkind,
                BoundaryKind::kPeriodic,
                BoundaryKind::kPeriodic,
                BoundaryKind::kPeriodic,
                BoundaryKind::kPeriodic};
  return g;
}

TEST(PecBoundary, ZeroesWallTangentialE) {
  const LocalGrid g(slab(8, BoundaryKind::kPec));
  FieldArray f(g);
  FieldBoundary bc(g);
  // Fill the wall planes with nonzero tangential E.
  for (int k = 0; k <= 5; ++k)
    for (int j = 0; j <= 5; ++j) {
      f.ey(1, j, k) = 1.0f;
      f.ez(1, j, k) = 2.0f;
      f.ey(9, j, k) = 3.0f;
      f.ez(9, j, k) = 4.0f;
      f.ey(5, j, k) = 7.0f;  // interior, must survive
    }
  bc.apply(f);
  for (int k = 0; k <= 5; ++k)
    for (int j = 0; j <= 5; ++j) {
      EXPECT_EQ(f.ey(1, j, k), 0.0f);
      EXPECT_EQ(f.ez(1, j, k), 0.0f);
      EXPECT_EQ(f.ey(9, j, k), 0.0f);
      EXPECT_EQ(f.ez(9, j, k), 0.0f);
      EXPECT_EQ(f.ey(5, j, k), 7.0f);
    }
}

TEST(PecBoundary, NormalEUntouched) {
  const LocalGrid g(slab(8, BoundaryKind::kPec));
  FieldArray f(g);
  FieldBoundary bc(g);
  f.ex(1, 2, 2) = 5.0f;  // Ex is normal to x walls
  bc.apply(f);
  EXPECT_EQ(f.ex(1, 2, 2), 5.0f);
}

TEST(MurBoundary, RequiresCapture) {
  const LocalGrid g(slab(8, BoundaryKind::kAbsorbing));
  FieldArray f(g);
  FieldBoundary bc(g);
  EXPECT_THROW(bc.apply(f), Error);
  bc.capture(f);
  EXPECT_NO_THROW(bc.apply(f));
}

TEST(MurBoundary, TooThinGridRejected) {
  GlobalGrid gg = slab(8, BoundaryKind::kAbsorbing);
  gg.nx = 1;
  EXPECT_THROW(FieldBoundary{LocalGrid{gg}}, Error);
}

TEST(MurBoundary, PeriodicNeedsNoState) {
  const LocalGrid g(slab(8, BoundaryKind::kPeriodic));
  FieldArray f(g);
  FieldBoundary bc(g);
  EXPECT_NO_THROW(bc.apply(f));  // nothing to do, nothing to capture
}

double reflected_fraction(BoundaryKind xkind) {
  // Launch a pulse at the +x wall and measure what comes back. Resolution:
  // ~12 cells per laser wavelength, where Mur-1 discretization error is
  // comfortably sub-percent.
  GlobalGrid gg = slab(128, xkind, 0.25);
  // Keep the -x side absorbing so the source's backward wave leaves.
  gg.boundary[grid::kFaceXLo] = BoundaryKind::kAbsorbing;
  const LocalGrid g(gg);
  FieldArray f(g);
  Halo halo(g, nullptr);
  FieldSolver solver(g, &halo);
  LaserConfig cfg;
  cfg.omega0 = 3.0;
  cfg.a0 = 0.05;
  cfg.ramp = 3.0;
  cfg.duration = 6.0;
  cfg.global_plane = 3;
  LaserAntenna antenna(g, cfg);
  solver.boundary().capture(f);

  // Outgoing peak measured at plane 80 as the pulse passes; reflected peak
  // measured at the same plane after it bounces off the +x wall.
  double t = 0;
  double out_peak = 0, back_peak = 0;
  while (t < 75.0) {
    f.clear_sources();
    antenna.deposit(f, t);
    solver.advance_b(f, 0.5);
    solver.advance_e(f);
    solver.advance_b(f, 0.5);
    t += g.dt();
    const auto [fwd, bwd] = wave_power_x(f, 80);
    out_peak = std::max(out_peak, fwd);
    back_peak = std::max(back_peak, bwd);
  }
  EXPECT_GT(out_peak, 0.0);
  return back_peak / out_peak;
}

TEST(MurBoundary, AbsorbsNormalIncidence) {
  // First-order Mur at normal incidence: reflected power well under 1%.
  EXPECT_LT(reflected_fraction(BoundaryKind::kAbsorbing), 0.01);
}

TEST(PecBoundary, YFacesZeroTangential) {
  GlobalGrid gg;
  gg.nx = gg.nz = 4;
  gg.ny = 8;
  gg.dx = gg.dy = gg.dz = 0.5;
  gg.boundary = {BoundaryKind::kPeriodic, BoundaryKind::kPeriodic,
                 BoundaryKind::kPec,      BoundaryKind::kPec,
                 BoundaryKind::kPeriodic, BoundaryKind::kPeriodic};
  const LocalGrid g(gg);
  FieldArray f(g);
  FieldBoundary bc(g);
  // y walls at j=1 and j=9; tangential components are Ex and Ez.
  f.ex(2, 1, 2) = 1.0f;
  f.ez(2, 1, 2) = 2.0f;
  f.ex(2, 9, 2) = 3.0f;
  f.ez(2, 9, 2) = 4.0f;
  f.ey(2, 1, 2) = 5.0f;  // normal component: untouched
  f.ex(2, 5, 2) = 6.0f;  // interior: untouched
  bc.apply(f);
  EXPECT_EQ(f.ex(2, 1, 2), 0.0f);
  EXPECT_EQ(f.ez(2, 1, 2), 0.0f);
  EXPECT_EQ(f.ex(2, 9, 2), 0.0f);
  EXPECT_EQ(f.ez(2, 9, 2), 0.0f);
  EXPECT_EQ(f.ey(2, 1, 2), 5.0f);
  EXPECT_EQ(f.ex(2, 5, 2), 6.0f);
}

TEST(MurBoundary, ZFacesAbsorbPropagatingWave) {
  // Same physics as the x-face test, rotated to the z axis: launch a pulse
  // along z (Ey polarization, cBx partner) toward an absorbing z wall and
  // verify the box drains.
  GlobalGrid gg;
  gg.nx = gg.ny = 2;
  gg.nz = 96;
  gg.dx = gg.dy = gg.dz = 0.25;
  gg.boundary = {BoundaryKind::kPeriodic,  BoundaryKind::kPeriodic,
                 BoundaryKind::kPeriodic,  BoundaryKind::kPeriodic,
                 BoundaryKind::kAbsorbing, BoundaryKind::kAbsorbing};
  const LocalGrid g(gg);
  FieldArray f(g);
  Halo halo(g, nullptr);
  FieldSolver solver(g, &halo);
  solver.boundary().capture(f);
  // Gaussian Ey/cBx pulse moving toward +z: Ey = a, cBx = +a (S_z = -Ey*cBx
  // ... for +z propagation with Ey: B = z_hat x E => cBx = -Ey? Use the
  // energy-drain criterion, which is direction-agnostic).
  for (int k = 1; k <= g.nz(); ++k) {
    const double z = g.node_z(k);
    const double a = 0.05 * std::exp(-0.25 * (z - 6.0) * (z - 6.0));
    for (int j = 1; j <= g.ny(); ++j)
      for (int i = 1; i <= g.nx(); ++i) {
        f.ey(i, j, k) = grid::real(a);
        f.cbx(i, j, k) = grid::real(a);
      }
  }
  solver.refresh_all(f);
  solver.boundary().capture(f);
  const double e0 = field_energy(f).total();
  ASSERT_GT(e0, 0.0);
  const int steps = int(80.0 / g.dt());
  for (int s = 0; s < steps; ++s) {
    solver.advance_b(f, 0.5);
    solver.advance_e(f);
    solver.advance_b(f, 0.5);
  }
  EXPECT_LT(field_energy(f).total(), 0.03 * e0);
}

TEST(PecBoundary, ReflectsNearlyAll) {
  // PEC wall: nearly all power comes back.
  EXPECT_GT(reflected_fraction(BoundaryKind::kPec), 0.7);
}

}  // namespace
}  // namespace minivpic::field
