#include "field/energy.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace minivpic::field {
namespace {

using grid::FieldArray;
using grid::GlobalGrid;
using grid::LocalGrid;

GlobalGrid cube(int n, double h = 0.5) {
  GlobalGrid g;
  g.nx = g.ny = g.nz = n;
  g.dx = g.dy = g.dz = h;
  return g;
}

void fill_uniform(FieldArray& f, float ex, float ey, float ez, float bx,
                  float by, float bz) {
  const auto& g = f.grid();
  for (int k = 1; k <= g.nz(); ++k)
    for (int j = 1; j <= g.ny(); ++j)
      for (int i = 1; i <= g.nx(); ++i) {
        f.ex(i, j, k) = ex;
        f.ey(i, j, k) = ey;
        f.ez(i, j, k) = ez;
        f.cbx(i, j, k) = bx;
        f.cby(i, j, k) = by;
        f.cbz(i, j, k) = bz;
      }
}

TEST(FieldEnergyTest, UniformFieldEnergies) {
  const LocalGrid g(cube(4, 0.5));
  FieldArray f(g);
  fill_uniform(f, 2.0f, 0.0f, 0.0f, 0.0f, 0.0f, 1.0f);
  const auto e = field_energy(f);
  const double vol = 64 * 0.125;  // cells * dV
  EXPECT_NEAR(e.ex, 0.5 * 4.0 * vol, 1e-9);
  EXPECT_NEAR(e.bz, 0.5 * 1.0 * vol, 1e-9);
  EXPECT_EQ(e.ey, 0.0);
  EXPECT_EQ(e.by, 0.0);
  EXPECT_NEAR(e.total(), e.ex + e.bz, 1e-12);
  EXPECT_NEAR(e.electric(), e.ex, 1e-12);
  EXPECT_NEAR(e.magnetic(), e.bz, 1e-12);
}

TEST(FieldEnergyTest, GhostsExcluded) {
  const LocalGrid g(cube(4));
  FieldArray f(g);
  f.ex(0, 0, 0) = 100.0f;
  f.ey(5, 5, 5) = 100.0f;
  EXPECT_EQ(field_energy(f).total(), 0.0);
}

TEST(PoyntingTest, UniformCrossedFields) {
  const LocalGrid g(cube(4, 0.5));
  FieldArray f(g);
  fill_uniform(f, 0.0f, 1.0f, 0.0f, 0.0f, 0.0f, 1.0f);  // Ey, cBz
  // S_x = Ey cBz = 1 per area; plane area = (4*0.5)^2 = 4.
  EXPECT_NEAR(poynting_flux_x(f, 2), 4.0, 1e-9);
}

TEST(PoyntingTest, ReversedWaveNegativeFlux) {
  const LocalGrid g(cube(4, 0.5));
  FieldArray f(g);
  fill_uniform(f, 0.0f, 1.0f, 0.0f, 0.0f, 0.0f, -1.0f);
  EXPECT_NEAR(poynting_flux_x(f, 2), -4.0, 1e-9);
}

TEST(PoyntingTest, OtherPolarization) {
  const LocalGrid g(cube(4, 0.5));
  FieldArray f(g);
  fill_uniform(f, 0.0f, 0.0f, 1.0f, 0.0f, -1.0f, 0.0f);  // Ez, -cBy -> +x
  EXPECT_NEAR(poynting_flux_x(f, 2), 4.0, 1e-9);
}

TEST(PoyntingTest, PlaneRangeChecked) {
  const LocalGrid g(cube(4));
  FieldArray f(g);
  EXPECT_THROW(poynting_flux_x(f, 0), Error);
  EXPECT_THROW(poynting_flux_x(f, 5), Error);
}

TEST(WavePowerTest, PureForwardWave) {
  const LocalGrid g(cube(4, 0.5));
  FieldArray f(g);
  fill_uniform(f, 0.0f, 0.8f, 0.0f, 0.0f, 0.0f, 0.8f);  // Ey = cBz
  const auto [fwd, bwd] = wave_power_x(f, 2);
  EXPECT_NEAR(fwd, 0.64, 1e-6);
  EXPECT_NEAR(bwd, 0.0, 1e-9);
}

TEST(WavePowerTest, PureBackwardWave) {
  const LocalGrid g(cube(4, 0.5));
  FieldArray f(g);
  fill_uniform(f, 0.0f, 0.8f, 0.0f, 0.0f, 0.0f, -0.8f);  // Ey = -cBz
  const auto [fwd, bwd] = wave_power_x(f, 2);
  EXPECT_NEAR(fwd, 0.0, 1e-9);
  EXPECT_NEAR(bwd, 0.64, 1e-6);
}

TEST(WavePowerTest, SecondPolarizationForward) {
  const LocalGrid g(cube(4, 0.5));
  FieldArray f(g);
  // +x propagation with Ez polarization: B = x_hat x E / c -> cBy = -Ez.
  fill_uniform(f, 0.0f, 0.0f, 0.6f, 0.0f, -0.6f, 0.0f);
  const auto [fwd, bwd] = wave_power_x(f, 2);
  EXPECT_NEAR(fwd, 0.36, 1e-6);
  EXPECT_NEAR(bwd, 0.0, 1e-9);
}

TEST(WavePowerTest, MixedDecomposition) {
  const LocalGrid g(cube(4, 0.5));
  FieldArray f(g);
  // Superposition: forward amplitude 1.0, backward amplitude 0.5 (Ey pol).
  // Ey = 1.0 + 0.5 = 1.5, cBz = 1.0 - 0.5 = 0.5.
  fill_uniform(f, 0.0f, 1.5f, 0.0f, 0.0f, 0.0f, 0.5f);
  const auto [fwd, bwd] = wave_power_x(f, 2);
  EXPECT_NEAR(fwd, 1.0, 1e-6);
  EXPECT_NEAR(bwd, 0.25, 1e-6);
}

}  // namespace
}  // namespace minivpic::field
