#include "field/clean.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "field/solver.hpp"
#include "util/error.hpp"

namespace minivpic::field {
namespace {

using grid::FieldArray;
using grid::GlobalGrid;
using grid::Halo;
using grid::LocalGrid;

GlobalGrid cube(int n, double h = 0.5) {
  GlobalGrid g;
  g.nx = g.ny = g.nz = n;
  g.dx = g.dy = g.dz = h;
  return g;
}

TEST(CleanerTest, RequiresHalo) {
  const LocalGrid g(cube(4));
  EXPECT_THROW(DivergenceCleaner(g, nullptr), Error);
}

TEST(CleanerTest, CleanFieldReportsZeroError) {
  const LocalGrid g(cube(8));
  FieldArray f(g);
  Halo halo(g, nullptr);
  DivergenceCleaner cleaner(g, &halo);
  EXPECT_EQ(cleaner.div_e_error_rms(f), 0.0);
  EXPECT_EQ(cleaner.div_b_error_rms(f), 0.0);
}

TEST(CleanerTest, DetectsInjectedDivE) {
  const LocalGrid g(cube(8));
  FieldArray f(g);
  Halo halo(g, nullptr);
  DivergenceCleaner cleaner(g, &halo);
  f.ex(4, 4, 4) = 1.0f;  // delta function -> div E != 0, rho = 0
  halo.refresh(f, grid::em_components());
  EXPECT_GT(cleaner.div_e_error_rms(f), 0.0);
}

TEST(CleanerTest, MarderPassesReduceDivEError) {
  const LocalGrid g(cube(8));
  FieldArray f(g);
  Halo halo(g, nullptr);
  DivergenceCleaner cleaner(g, &halo);
  // Smooth spurious longitudinal field with no charge to support it.
  for (int k = 1; k <= 8; ++k)
    for (int j = 1; j <= 8; ++j)
      for (int i = 1; i <= 8; ++i)
        f.ex(i, j, k) =
            grid::real(0.1 * std::sin(2 * std::numbers::pi * i / 8.0));
  halo.refresh(f, grid::em_components());
  const double before = cleaner.div_e_error_rms(f);
  ASSERT_GT(before, 0.0);
  cleaner.clean_e(f, 20);
  const double after = cleaner.div_e_error_rms(f);
  EXPECT_LT(after, 0.5 * before);
}

TEST(CleanerTest, MarderPassesReduceDivBError) {
  const LocalGrid g(cube(8));
  FieldArray f(g);
  Halo halo(g, nullptr);
  DivergenceCleaner cleaner(g, &halo);
  for (int k = 1; k <= 8; ++k)
    for (int j = 1; j <= 8; ++j)
      for (int i = 1; i <= 8; ++i)
        f.cbx(i, j, k) =
            grid::real(0.1 * std::cos(2 * std::numbers::pi * i / 8.0));
  halo.refresh(f, grid::em_components());
  const double before = cleaner.div_b_error_rms(f);
  ASSERT_GT(before, 0.0);
  cleaner.clean_b(f, 20);
  EXPECT_LT(cleaner.div_b_error_rms(f), 0.5 * before);
}

TEST(CleanerTest, ConsistentChargeNotDisturbed) {
  // A field with div E exactly equal to rho must be a fixed point.
  const LocalGrid g(cube(8));
  FieldArray f(g);
  Halo halo(g, nullptr);
  DivergenceCleaner cleaner(g, &halo);
  for (int k = 1; k <= 8; ++k)
    for (int j = 1; j <= 8; ++j)
      for (int i = 1; i <= 8; ++i)
        f.ex(i, j, k) =
            grid::real(0.2 * std::sin(2 * std::numbers::pi * i / 8.0));
  halo.refresh(f, grid::em_components());
  // Set rho := div E so the error starts at zero.
  for (int k = 1; k <= 8; ++k)
    for (int j = 1; j <= 8; ++j)
      for (int i = 1; i <= 8; ++i)
        f.rhof(i, j, k) =
            grid::real((f.ex(i, j, k) - f.ex(i - 1, j, k)) / g.dx());
  // rho ghosts: refresh so error nodes at n+1 see the right rho.
  halo.refresh(f, {grid::Component::kRhof});
  const double before = cleaner.div_e_error_rms(f);
  EXPECT_NEAR(before, 0.0, 1e-7);
  const float e0 = f.ex(3, 3, 3);
  cleaner.clean_e(f, 5);
  EXPECT_NEAR(f.ex(3, 3, 3), e0, 1e-6);
}

TEST(CleanerTest, YeeAdvancePreservesDivB) {
  // The Yee curl update preserves div B to round-off; confirm over many
  // steps with a propagating wave.
  const LocalGrid g(cube(8));
  FieldArray f(g);
  Halo halo(g, nullptr);
  FieldSolver solver(g, &halo);
  DivergenceCleaner cleaner(g, &halo);
  for (int k = 1; k <= 8; ++k)
    for (int j = 1; j <= 8; ++j)
      for (int i = 1; i <= 8; ++i)
        f.ey(i, j, k) =
            grid::real(0.1 * std::sin(2 * std::numbers::pi * i / 8.0));
  solver.refresh_all(f);
  EXPECT_EQ(cleaner.div_b_error_rms(f), 0.0);
  for (int s = 0; s < 100; ++s) {
    solver.advance_b(f, 0.5);
    solver.advance_e(f);
    solver.advance_b(f, 0.5);
  }
  EXPECT_LT(cleaner.div_b_error_rms(f), 1e-6);
}

}  // namespace
}  // namespace minivpic::field
