#include "field/antenna.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "field/energy.hpp"
#include "field/solver.hpp"
#include "util/error.hpp"

namespace minivpic::field {
namespace {

using grid::FieldArray;
using grid::GlobalGrid;
using grid::Halo;
using grid::LocalGrid;

GlobalGrid slab(int nx) {
  GlobalGrid g;
  g.nx = nx;
  g.ny = g.nz = 4;
  g.dx = g.dy = g.dz = 0.5;
  g.boundary = grid::lpi_boundaries();
  return g;
}

TEST(Waveform, ZeroBeforeStart) {
  LaserConfig cfg;
  EXPECT_EQ(laser_waveform(cfg, -1.0), 0.0);
}

TEST(Waveform, RampsToFullAmplitude) {
  LaserConfig cfg;
  cfg.a0 = 0.5;
  cfg.omega0 = 4.0;
  cfg.ramp = 10.0;
  // Early in the ramp the envelope is tiny.
  EXPECT_LT(std::abs(laser_waveform(cfg, 0.5)), 0.05 * cfg.a0);
  // After the ramp, peaks reach a0.
  double peak = 0;
  for (double t = 20.0; t < 25.0; t += 0.01)
    peak = std::max(peak, std::abs(laser_waveform(cfg, t)));
  EXPECT_NEAR(peak, cfg.a0, 0.01 * cfg.a0);
}

TEST(Waveform, OscillatesAtOmega0) {
  LaserConfig cfg;
  cfg.a0 = 1.0;
  cfg.omega0 = 2.0;
  cfg.ramp = 0.001;
  // Zeros of sin(w t) at t = pi/w.
  EXPECT_NEAR(laser_waveform(cfg, std::numbers::pi / 2.0), 0.0, 1e-9);
  EXPECT_GT(laser_waveform(cfg, 0.25 * std::numbers::pi), 0.9);
}

TEST(Waveform, DurationCutsOff) {
  LaserConfig cfg;
  cfg.duration = 5.0;
  EXPECT_EQ(laser_waveform(cfg, 5.1), 0.0);
}

TEST(Antenna, ConfigValidation) {
  const LocalGrid g(slab(16));
  LaserConfig cfg;
  cfg.omega0 = -1;
  EXPECT_THROW(LaserAntenna(g, cfg), Error);
  cfg = {};
  cfg.a0 = -0.5;
  EXPECT_THROW(LaserAntenna(g, cfg), Error);
  cfg = {};
  cfg.ramp = 0;
  EXPECT_THROW(LaserAntenna(g, cfg), Error);
  cfg = {};
  cfg.global_plane = 0;
  EXPECT_THROW(LaserAntenna(g, cfg), Error);
  cfg.global_plane = 17;
  EXPECT_THROW(LaserAntenna(g, cfg), Error);
}

TEST(Antenna, PlaneOwnership) {
  const GlobalGrid gg = slab(16);
  const vmpi::CartTopology topo({2, 1, 1}, {false, true, true});
  LaserConfig cfg;
  cfg.global_plane = 3;
  const LocalGrid g0(gg, topo, 0);
  const LocalGrid g1(gg, topo, 1);
  EXPECT_EQ(LaserAntenna(g0, cfg).local_plane(), 3);
  EXPECT_EQ(LaserAntenna(g1, cfg).local_plane(), -1);
  cfg.global_plane = 11;
  EXPECT_EQ(LaserAntenna(g0, cfg).local_plane(), -1);
  EXPECT_EQ(LaserAntenna(g1, cfg).local_plane(), 3);
}

TEST(Antenna, DepositsOnlyOnOwnedPlane) {
  const LocalGrid g(slab(16));
  FieldArray f(g);
  LaserConfig cfg;
  cfg.global_plane = 5;
  cfg.ramp = 0.001;
  LaserAntenna antenna(g, cfg);
  antenna.deposit(f, 0.3);
  for (int i = 1; i <= 16; ++i) {
    if (i == 5) {
      EXPECT_NE(f.jfy(i, 2, 2), 0.0f);
    } else {
      EXPECT_EQ(f.jfy(i, 2, 2), 0.0f);
    }
  }
  EXPECT_EQ(f.jfz(5, 2, 2), 0.0f);  // y-polarized by default
}

TEST(Antenna, ZPolarization) {
  const LocalGrid g(slab(16));
  FieldArray f(g);
  LaserConfig cfg;
  cfg.global_plane = 5;
  cfg.ramp = 0.001;
  cfg.polarize_z = true;
  LaserAntenna antenna(g, cfg);
  antenna.deposit(f, 0.3);
  EXPECT_NE(f.jfz(5, 2, 2), 0.0f);
  EXPECT_EQ(f.jfy(5, 2, 2), 0.0f);
}

TEST(Antenna, LaunchesCalibratedAmplitude) {
  // In vacuum with absorbing walls, the antenna must launch a forward wave
  // whose E amplitude matches cfg.a0 and whose backward power at a plane in
  // front of the source is negligible. Resolved at ~8 cells/wavelength so
  // the finite-thickness source correction and Mur residuals are small.
  GlobalGrid gg = slab(96);
  gg.dx = gg.dy = gg.dz = 0.25;
  const LocalGrid g(gg);
  FieldArray f(g);
  Halo halo(g, nullptr);
  FieldSolver solver(g, &halo);
  LaserConfig cfg;
  cfg.omega0 = 3.0;
  cfg.a0 = 0.02;
  cfg.ramp = 8.0;
  cfg.global_plane = 3;
  LaserAntenna antenna(g, cfg);
  solver.boundary().capture(f);

  double t = 0;
  double peak_mid = 0;
  double fwd_acc = 0, bwd_acc = 0;
  int acc_n = 0;
  while (t < 60.0) {
    f.clear_sources();
    antenna.deposit(f, t);
    solver.advance_b(f, 0.5);
    solver.advance_e(f);
    solver.advance_b(f, 0.5);
    t += g.dt();
    if (t > 35.0) {  // steady state at the middle of the box
      peak_mid = std::max(peak_mid, std::abs(double(f.ey(48, 2, 2))));
      const auto [fwd, bwd] = wave_power_x(f, 24);
      fwd_acc += fwd;
      bwd_acc += bwd;
      ++acc_n;
    }
  }
  EXPECT_NEAR(peak_mid, cfg.a0, 0.15 * cfg.a0);
  ASSERT_GT(acc_n, 0);
  EXPECT_GT(fwd_acc / acc_n, 0.0);
  // Vacuum: essentially no backward-going wave.
  EXPECT_LT(bwd_acc, 0.02 * fwd_acc);
}

}  // namespace
}  // namespace minivpic::field
