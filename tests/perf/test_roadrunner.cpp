#include "perf/roadrunner.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace minivpic::perf {
namespace {

TEST(RoadrunnerModelTest, MachineShape) {
  const RoadrunnerModel model;
  EXPECT_EQ(model.total_cells(), 12240);
  EXPECT_EQ(model.total_spes(), 97920);
  // SP peak ~2.51 Pflop/s on the Cell side.
  EXPECT_NEAR(model.peak_sp_flops() / 1e15, 2.507, 0.01);
}

TEST(RoadrunnerModelTest, ReproducesHeadlineNumbers) {
  // The paper: 1.0e12 particles on 136e6 voxels sustained >0.374 Pflop/s
  // with the inner loop at 0.488 Pflop/s. The model must land within ~10%.
  const RoadrunnerModel model;
  const auto p = model.predict(1.0e12, 136e6);
  EXPECT_NEAR(p.inner_loop_flops / 1e15, 0.488, 0.05);
  EXPECT_NEAR(p.sustained_flops / 1e15, 0.374, 0.04);
  EXPECT_TRUE(p.memory_bound) << "the paper's point: PIC is data-motion "
                                 "limited at this scale";
  EXPECT_GT(p.particles_per_second, 1e12);
}

TEST(RoadrunnerModelTest, StepDecomposesConsistently) {
  const RoadrunnerModel model;
  const auto p = model.predict(1.0e12, 136e6);
  EXPECT_NEAR(p.t_step, p.t_push + p.t_reduce + p.t_sort + p.t_field +
                            p.t_comm + p.t_host,
              1e-12);
  EXPECT_GT(p.t_push / p.t_step, 0.5) << "particle advance must dominate";
  EXPECT_GT(p.inner_loop_flops, p.sustained_flops);
}

TEST(RoadrunnerModelTest, PipelineCountShapesTheRoofline) {
  // One pipeline per chip idles 7 of 8 SPEs: the push must flip to
  // compute-bound and slow down; the accumulator reduction must shrink.
  RoadrunnerConfig one;
  one.pipelines_per_chip = 1;
  const auto p1 = RoadrunnerModel(one).predict(1.0e12, 136e6);
  const auto p8 = RoadrunnerModel().predict(1.0e12, 136e6);
  EXPECT_GT(p1.t_push, p8.t_push);
  EXPECT_FALSE(p1.memory_bound) << "one pipeline cannot saturate memory";
  EXPECT_TRUE(p8.memory_bound);
  EXPECT_LT(p1.t_reduce, p8.t_reduce);
  // At full pipelines the reduction is a negligible serial tax (<1% step).
  EXPECT_LT(p8.t_reduce / p8.t_step, 0.01);
}

TEST(RoadrunnerModelTest, WeakScalingNearLinear) {
  // Fixed per-chip load: sustained rate grows ~linearly with chips.
  const RoadrunnerModel model;
  const double per_chip_particles = 1.0e12 / 12240;
  const double per_chip_voxels = 136e6 / 12240;
  const auto small = model.predict(per_chip_particles * 100,
                                   per_chip_voxels * 100, 100);
  const auto big = model.predict(per_chip_particles * 12240,
                                 per_chip_voxels * 12240, 12240);
  const double eff =
      (big.sustained_flops / 12240.0) / (small.sustained_flops / 100.0);
  EXPECT_GT(eff, 0.95);
  EXPECT_LE(eff, 1.02);
}

TEST(RoadrunnerModelTest, ComputeBoundAtLowPpc) {
  // Few particles per voxel raise interpolator traffic per particle — but
  // the roofline crossover is about flops vs bytes per particle: crank the
  // flop count and the model must flip to compute-bound.
  RoadrunnerConfig cfg;
  cfg.flops_per_particle = 2000;
  const RoadrunnerModel model(cfg);
  const auto p = model.predict(1e12, 136e6);
  EXPECT_FALSE(p.memory_bound);
}

TEST(RoadrunnerModelTest, PartialMachine) {
  const RoadrunnerModel model;
  const auto p = model.predict(1e10, 1.36e6, 122);
  EXPECT_NEAR(p.peak_sp_flops, 122 * 8 * 3.2e9 * 8, 1.0);
  EXPECT_THROW(model.predict(1e10, 1e6, 20000), Error);
  EXPECT_THROW(model.predict(-1, 1e6), Error);
}

TEST(RoadrunnerModelTest, ConfigValidation) {
  RoadrunnerConfig cfg;
  cfg.spe_push_efficiency = 0;
  EXPECT_THROW(RoadrunnerModel{cfg}, Error);
  cfg = {};
  cfg.sort_period = 0;
  EXPECT_THROW(RoadrunnerModel{cfg}, Error);
  cfg = {};
  cfg.flops_per_particle = -5;
  EXPECT_THROW(RoadrunnerModel{cfg}, Error);
  cfg = {};
  cfg.pipelines_per_chip = 0;
  EXPECT_THROW(RoadrunnerModel{cfg}, Error);
  cfg = {};
  cfg.pipelines_per_chip = 9;  // more pipelines than SPEs
  EXPECT_THROW(RoadrunnerModel{cfg}, Error);
}

TEST(RoadrunnerModelTest, OverlapFactorHidesCommBehindInteriorPush) {
  RoadrunnerConfig off;  // comm_overlap defaults to 0: the legacy model
  const auto barriered = RoadrunnerModel(off).predict(1.0e12, 136e6);
  EXPECT_DOUBLE_EQ(barriered.t_comm_hidden, 0.0);
  EXPECT_DOUBLE_EQ(barriered.t_comm_exposed, barriered.t_comm);

  RoadrunnerConfig on;
  on.comm_overlap = 1.0;
  const auto overlapped = RoadrunnerModel(on).predict(1.0e12, 136e6);
  // The split is exact, the hidden part is bounded by the interior cover,
  // and hiding comm can only shorten the step.
  EXPECT_NEAR(overlapped.t_comm_hidden + overlapped.t_comm_exposed,
              overlapped.t_comm, 1e-15);
  EXPECT_GT(overlapped.t_comm_hidden, 0.0);
  EXPECT_LE(overlapped.t_comm_hidden,
            overlapped.t_push * (1.0 - overlapped.skin_fraction) + 1e-15);
  EXPECT_LT(overlapped.t_step, barriered.t_step);
  EXPECT_NEAR(barriered.t_step - overlapped.t_step, overlapped.t_comm_hidden,
              1e-12);
}

TEST(RoadrunnerModelTest, SkinFractionFollowsVoxelBlockGeometry) {
  // 136e6 voxels over 12240 cells -> ~11111 per cell, side ~22.3: the
  // 2-cell-thick skin shell of a cube that size is ~25% of its volume.
  const auto p = RoadrunnerModel().predict(1.0e12, 136e6);
  EXPECT_GT(p.skin_fraction, 0.0);
  EXPECT_LT(p.skin_fraction, 1.0);
  EXPECT_NEAR(p.skin_fraction, 0.25, 0.05);

  RoadrunnerConfig cfg;
  cfg.comm_overlap = 1.5;  // outside [0, 1]
  EXPECT_THROW(RoadrunnerModel{cfg}, Error);
  cfg.comm_overlap = -0.1;
  EXPECT_THROW(RoadrunnerModel{cfg}, Error);
}

}  // namespace
}  // namespace minivpic::perf
