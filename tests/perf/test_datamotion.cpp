#include "perf/datamotion.hpp"

#include <gtest/gtest.h>

#include "perf/costs.hpp"
#include "util/error.hpp"

namespace minivpic::perf {
namespace {

TEST(CostsTest, PushCostsSane) {
  EXPECT_GT(KernelCosts::push_flops_per_particle(), 100.0);
  // Sorted, high-ppc PIC: ~160 B/particle -> ~1 flop/byte.
  const double bytes = KernelCosts::push_bytes_per_particle(64);
  EXPECT_NEAR(bytes, 162.25, 0.5);
  // Low ppc costs more traffic per particle.
  EXPECT_GT(KernelCosts::push_bytes_per_particle(1),
            KernelCosts::push_bytes_per_particle(64));
}

TEST(CostsTest, ComparisonKernelIntensities) {
  // The data-motion ordering the abstract claims: PIC < MC, MD, GEMM in
  // flops per byte.
  const double pic = KernelCosts::push_flops_per_particle() /
                     KernelCosts::push_bytes_per_particle(64);
  const double gemm = KernelCosts::sgemm_flops(1024) /
                      KernelCosts::sgemm_bytes(1024);
  const double nbody =
      KernelCosts::nbody_flops(4096) / KernelCosts::nbody_bytes(4096);
  EXPECT_LT(pic, gemm);
  EXPECT_LT(pic, nbody);
  EXPECT_GT(pic, 0.5);
  EXPECT_LT(pic, 3.0);
}

TEST(DataMotionTest, SgemmRunsAndCounts) {
  const auto rep = run_sgemm(64);
  EXPECT_GT(rep.seconds, 0.0);
  EXPECT_DOUBLE_EQ(rep.flops, 2.0 * 64 * 64 * 64);
  EXPECT_GT(rep.gflops(), 0.01);
  EXPECT_THROW(run_sgemm(2), Error);
}

TEST(DataMotionTest, NbodyRunsAndCounts) {
  const auto rep = run_nbody(512);
  EXPECT_GT(rep.seconds, 0.0);
  EXPECT_DOUBLE_EQ(rep.flops, 20.0 * 512 * 512);
  EXPECT_NE(rep.checksum, 0.0);
}

TEST(DataMotionTest, MonteCarloEstimatesPi) {
  const auto rep = run_montecarlo(200000);
  EXPECT_NEAR(rep.checksum, 3.14159, 0.05);
  EXPECT_EQ(rep.bytes, 0.0);
  EXPECT_GT(rep.flops_per_byte(), 1e6);  // effectively infinite intensity
}

TEST(DataMotionTest, PicPushRunsAndCounts) {
  const auto rep = run_pic_push(16384, 16);
  EXPECT_GT(rep.seconds, 0.0);
  EXPECT_GT(rep.flops, 0.0);
  EXPECT_GT(rep.bytes, 0.0);
  // PIC sits near ~1 flop/byte — far below the compute kernels.
  EXPECT_LT(rep.flops_per_byte(), 3.0);
}

}  // namespace
}  // namespace minivpic::perf
