#include "sim/deck_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "sim/simulation.hpp"
#include "util/error.hpp"

namespace minivpic::sim {
namespace {

Deck parse(const std::string& text) {
  std::istringstream in(text);
  return parse_deck(in);
}

const char* kLpiDeck = R"(
# LPI slab deck
[grid]
nx = 48  ny = 2  nz = 2  dx = 0.25
boundary_x = absorbing
particle_bc_x = absorb

[species electron]
q = -1  m = 1  ppc = 4  uth = 0.06
slab_x0 = 2.0  slab_x1 = 10.0

[species ion]
q = 1  m = 1836  ppc = 4  uth = 0.001  mobile = false
slab_x0 = 2.0  slab_x1 = 10.0

[laser]
omega0 = 3.16  a0 = 0.1  ramp = 5  plane = 2

[control]
sort_period = 10  clean_period = 25
)";

TEST(DeckIoTest, ParsesFullLpiDeck) {
  const Deck d = parse(kLpiDeck);
  EXPECT_EQ(d.grid.nx, 48);
  EXPECT_EQ(d.grid.ny, 2);
  EXPECT_DOUBLE_EQ(d.grid.dx, 0.25);
  EXPECT_DOUBLE_EQ(d.grid.dy, 0.25);  // defaults to dx
  EXPECT_EQ(d.grid.boundary[grid::kFaceXLo], grid::BoundaryKind::kAbsorbing);
  EXPECT_EQ(d.grid.boundary[grid::kFaceYLo], grid::BoundaryKind::kPeriodic);
  EXPECT_EQ(d.particle_bc[grid::kFaceXHi], particles::ParticleBc::kAbsorb);
  ASSERT_EQ(d.species.size(), 2u);
  EXPECT_EQ(d.species[0].name, "electron");
  EXPECT_EQ(d.species[0].load.ppc, 4);
  EXPECT_FALSE(d.species[1].mobile);
  ASSERT_TRUE(d.species[0].load.profile);
  EXPECT_EQ(d.species[0].load.profile(1.0, 0, 0), 0.0);
  EXPECT_EQ(d.species[0].load.profile(5.0, 0, 0), 1.0);
  ASSERT_TRUE(d.laser.has_value());
  EXPECT_DOUBLE_EQ(d.laser->a0, 0.1);
  EXPECT_EQ(d.sort_period, 10);
  EXPECT_EQ(d.clean_period, 25);
  // [control] without a kernel key defaults to auto (deck files are the
  // production front end; the Deck struct default stays scalar).
  EXPECT_EQ(d.kernel, particles::Kernel::kAuto);
  // Likewise without an overlap key: auto, resolved at Simulation build.
  EXPECT_EQ(d.overlap, Deck::Overlap::kAuto);
}

TEST(DeckIoTest, OverlapModeParses) {
  const char* tmpl = "[grid]\nnx = 8\n[species e]\nq=-1 m=1 ppc=1 uth=0.01\n"
                     "[control]\noverlap = ";
  EXPECT_EQ(parse(std::string(tmpl) + "on").overlap, Deck::Overlap::kOn);
  EXPECT_EQ(parse(std::string(tmpl) + "off").overlap, Deck::Overlap::kOff);
  EXPECT_EQ(parse(std::string(tmpl) + "auto").overlap, Deck::Overlap::kAuto);
  EXPECT_THROW(parse(std::string(tmpl) + "sometimes"), Error);
}

TEST(DeckIoTest, KernelKey) {
  const char* tmpl = R"(
[grid]
nx = 4  ny = 4  nz = 4  dx = 0.5
[species electron]
ppc = 4  uth = 0.1
[control]
kernel = )";
  EXPECT_EQ(parse(std::string(tmpl) + "scalar\n").kernel,
            particles::Kernel::kScalar);
  EXPECT_EQ(parse(std::string(tmpl) + "sse\n").kernel,
            particles::Kernel::kSse);
  EXPECT_EQ(parse(std::string(tmpl) + "avx512\n").kernel,
            particles::Kernel::kAvx512);
  EXPECT_EQ(parse(std::string(tmpl) + "auto\n").kernel,
            particles::Kernel::kAuto);
  EXPECT_THROW(parse(std::string(tmpl) + "altivec\n"), Error);
  // No [control] section at all: the conservative struct default.
  EXPECT_EQ(parse(R"(
[grid]
nx = 4  dx = 0.5
[species electron]
ppc = 4  uth = 0.1
)").kernel, particles::Kernel::kScalar);
}

TEST(DeckIoTest, ParsedDeckRuns) {
  Simulation sim(parse(kLpiDeck));
  sim.initialize();
  EXPECT_GT(sim.global_particle_count(), 0);
  sim.run(5);
  EXPECT_GT(sim.energies().field.total(), 0.0);
}

TEST(DeckIoTest, CollisionSection) {
  const Deck d = parse(R"(
[grid]
nx = 4  ny = 4  nz = 4  dx = 0.5
[species electron]
ppc = 4  uth = 0.1
[collision electron electron]
nu_scale = 1e-4  period = 5
)");
  ASSERT_EQ(d.collisions.size(), 1u);
  EXPECT_EQ(d.collisions[0].species_a, "electron");
  EXPECT_DOUBLE_EQ(d.collisions[0].nu_scale, 1e-4);
  EXPECT_EQ(d.collisions[0].period, 5);
}

TEST(DeckIoTest, AnisotropicAndDrift) {
  const Deck d = parse(R"(
[grid]
nx = 4  dx = 0.5
[species beam]
uth_x = 0.01  uth_y = 0.02  uth_z = 0.3  drift_x = 0.5  seed = 99
)");
  EXPECT_EQ(d.species[0].load.uth3[2], 0.3);
  EXPECT_EQ(d.species[0].load.drift[0], 0.5);
  EXPECT_EQ(d.species[0].load.seed, 99u);
}

TEST(DeckIoTest, CommentsAndSpacingTolerated) {
  const Deck d = parse(R"(
# leading comment
[grid]
nx=8 ny =8 nz= 8   dx = 0.5  # trailing comment
[species e]
ppc = 2
)");
  EXPECT_EQ(d.grid.nx, 8);
  EXPECT_EQ(d.grid.ny, 8);
  EXPECT_EQ(d.grid.nz, 8);
}

TEST(DeckIoTest, ErrorsAreSpecific) {
  // Unknown key.
  EXPECT_THROW(parse("[grid]\nnx = 4\nbogus = 1\n[species e]\nppc=1\n"),
               Error);
  // Unknown section.
  EXPECT_THROW(parse("[grid]\nnx=4\n[warp drive]\n"), Error);
  // Key before section.
  EXPECT_THROW(parse("nx = 4\n"), Error);
  // Bad number.
  EXPECT_THROW(parse("[grid]\nnx = four\n[species e]\nppc=1\n"), Error);
  // Non-integer where integer expected.
  EXPECT_THROW(parse("[grid]\nnx = 4.5\n[species e]\nppc=1\n"), Error);
  // Missing grid.
  EXPECT_THROW(parse("[species e]\nppc=1\n"), Error);
  // Missing species.
  EXPECT_THROW(parse("[grid]\nnx=4\n"), Error);
  // Bad boundary name.
  EXPECT_THROW(
      parse("[grid]\nnx=4\nboundary_x = mirror\n[species e]\nppc=1\n"),
      Error);
  // Species without a name.
  EXPECT_THROW(parse("[grid]\nnx=4\n[species]\nppc=1\n"), Error);
  // Bad slab ordering.
  EXPECT_THROW(
      parse("[grid]\nnx=4\n[species e]\nslab_x0=5\nslab_x1=2\n"), Error);
  // Unterminated section.
  EXPECT_THROW(parse("[grid\nnx=4\n"), Error);
}

TEST(DeckIoTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/minivpic_test.deck";
  {
    std::ofstream out(path);
    out << kLpiDeck;
  }
  const Deck d = load_deck_file(path);
  EXPECT_EQ(d.grid.nx, 48);
  std::remove(path.c_str());
  EXPECT_THROW(load_deck_file("/nonexistent.deck"), Error);
}

// -- overrides (--set and campaign axes) --------------------------------------

TEST(DeckOverrideTest, ParseSplitsAtLastDot) {
  const DeckOverride ov = parse_override("species electron.uth=0.07");
  EXPECT_EQ(ov.section, "species electron");
  EXPECT_EQ(ov.key, "uth");
  EXPECT_EQ(ov.value, "0.07");
  EXPECT_EQ(ov.spec(), "species electron.uth=0.07");
  EXPECT_THROW(parse_override("no_dot=1"), Error);
  EXPECT_THROW(parse_override("grid.nx"), Error);  // no value
  EXPECT_THROW(parse_override(".nx=4"), Error);    // empty section
}

TEST(DeckOverrideTest, AppliedOverridesRewriteTheDeck) {
  DeckSource src = DeckSource::from_text(kLpiDeck);
  src.apply_override("grid.nx", "64");
  src.apply_override("species electron.uth", "0.1");
  src.apply_override(parse_override("laser.a0=0.25"));
  const Deck d = src.build();
  EXPECT_EQ(d.grid.nx, 64);
  EXPECT_DOUBLE_EQ(d.species[0].load.uth, 0.1);
  EXPECT_DOUBLE_EQ(d.laser->a0, 0.25);
}

TEST(DeckOverrideTest, UnknownKeysAndSectionsRejected) {
  DeckSource src = DeckSource::from_text(kLpiDeck);
  // An unknown key in a real section fails at build() via check_known.
  src.apply_override("grid.bogus", "1");
  EXPECT_THROW(src.build(), Error);
  // A species that does not exist cannot be created by an override.
  DeckSource src2 = DeckSource::from_text(kLpiDeck);
  EXPECT_THROW(src2.apply_override("species muon.uth", "0.1"), Error);
}

TEST(DeckOverrideTest, OverrideCreatesSingletonSectionOnDemand) {
  // A deck with no [control] section still accepts control overrides.
  DeckSource src = DeckSource::from_text(
      "[grid]\nnx = 8\n[species e]\nq = -1\nm = 1\nppc = 2\n");
  src.apply_override("control.sort_period", "5");
  EXPECT_EQ(src.build().sort_period, 5);
}

TEST(DeckSourceTest, CampaignSectionCarriedButIgnoredByBuild) {
  DeckSource src = DeckSource::from_text(
      "[grid]\nnx = 8\n[species e]\nq = -1\nm = 1\nppc = 2\n"
      "[campaign]\ngrid.nx = 8, 16   # a sweep\nsteps = 4\n");
  ASSERT_EQ(src.campaign_lines().size(), 2u);
  EXPECT_EQ(src.campaign_lines()[0], "grid.nx = 8, 16");
  EXPECT_EQ(src.build().grid.nx, 8);  // campaign lines don't touch the deck
  // The canonical text (the job-id fingerprint) excludes the campaign
  // section but reflects overrides.
  const std::string before = src.canonical_text();
  EXPECT_EQ(before.find("campaign"), std::string::npos);
  src.apply_override("grid.nx", "32");
  EXPECT_NE(src.canonical_text(), before);
}

}  // namespace
}  // namespace minivpic::sim
