// Kinetic plasma physics integration tests: the textbook phenomena a PIC
// code must reproduce quantitatively before the paper's LPI problem means
// anything.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "fft/fft.hpp"
#include "sim/simulation.hpp"
#include "util/stats.hpp"

namespace minivpic::sim {
namespace {

TEST(PlasmaPhysics, LangmuirOscillationAtOmegaPe) {
  // Cold plasma oscillation: the electron slab sloshes at exactly omega_pe
  // (= 1 in code units).
  Simulation sim(plasma_oscillation_deck(16, 16, 0.01));
  sim.initialize();
  std::vector<double> probe;
  const int steps = 512;
  for (int s = 0; s < steps; ++s) {
    sim.step();
    probe.push_back(sim.fields().ex(4, 2, 2));
  }
  const auto power = fft::power_spectrum(probe);
  const auto peak = fft::peak_bin(power, 1, power.size());
  const double w = fft::bin_omega(peak, 2 * (power.size() - 1),
                                  sim.local_grid().dt());
  EXPECT_NEAR(w, 1.0, 0.06);
}

TEST(PlasmaPhysics, LangmuirAmplitudeScalesWithPerturbation) {
  auto peak_ex_energy = [](double pert) {
    Simulation sim(plasma_oscillation_deck(16, 16, pert));
    sim.initialize();
    double peak = 0;
    for (int s = 0; s < 60; ++s) {
      sim.step();
      peak = std::max(peak, sim.energies().field.ex);
    }
    return peak;
  };
  const double e1 = peak_ex_energy(0.005);
  const double e2 = peak_ex_energy(0.01);
  // Field energy scales as perturbation^2.
  EXPECT_NEAR(e2 / e1, 4.0, 0.5);
}

TEST(PlasmaPhysics, TwoStreamInstabilityGrowsAndSaturates) {
  // u = 0.5 puts the fastest-growing mode (k v ~ 0.7 omega_pe) at ~8 cells
  // per wavelength in this box — comfortably resolved.
  Simulation sim(two_stream_deck(32, 48, 0.5));
  sim.initialize();
  std::vector<double> t, ex_energy;
  const int steps = 700;
  for (int s = 0; s < steps; ++s) {
    sim.step();
    t.push_back(sim.time());
    ex_energy.push_back(sim.energies().field.ex);
  }
  // Noise floor early, exponential growth, then saturation.
  const double early = ex_energy[10];
  const double peak = *std::max_element(ex_energy.begin(), ex_energy.end());
  ASSERT_GT(early, 0.0);
  EXPECT_GT(peak / early, 1e2) << "instability failed to grow";
  // Growth rate in the linear phase: bracket the theoretical cold-beam
  // value loosely (energy grows at 2*gamma).
  std::size_t i_start = 0;
  while (i_start < ex_energy.size() && ex_energy[i_start] < 30 * early)
    ++i_start;
  std::size_t i_end = i_start;
  while (i_end < ex_energy.size() && ex_energy[i_end] < 0.1 * peak) ++i_end;
  if (i_end > i_start + 10) {
    const auto fit = fit_exponential_growth(t, ex_energy, i_start, i_end);
    const double gamma = fit.slope / 2.0;
    EXPECT_GT(gamma, 0.05);
    EXPECT_LT(gamma, 0.8);
  }
  // Saturation: the last quarter must not keep growing exponentially.
  const double late = ex_energy[steps - 1];
  EXPECT_LT(late, 3 * peak);
}

TEST(PlasmaPhysics, WeibelGrowsInPlaneMagneticField) {
  Simulation sim(weibel_deck(16, 32, 0.3, 0.03));
  sim.initialize();
  const auto e0 = sim.energies();
  const double b_plane_0 = e0.field.bx + e0.field.by;
  double b_plane_peak = b_plane_0;
  double bz_peak = e0.field.bz;
  for (int s = 0; s < 500; ++s) {
    sim.step();
    const auto e = sim.energies();
    b_plane_peak = std::max(b_plane_peak, e.field.bx + e.field.by);
    bz_peak = std::max(bz_peak, e.field.bz);
  }
  // Filamentation of the hot-z current: in-plane B grows far past noise...
  EXPECT_GT(b_plane_peak, 50 * std::max(b_plane_0, 1e-12));
  // ...and dominates the out-of-plane component.
  EXPECT_GT(b_plane_peak, 3 * bz_peak);
}

TEST(PlasmaPhysics, ThermalPlasmaEnergyConservation) {
  // Warm neutral plasma with resolved Debye length: total energy drifts by
  // well under a percent over hundreds of steps.
  Deck d;
  d.grid.nx = d.grid.ny = d.grid.nz = 8;
  d.grid.dx = d.grid.dy = d.grid.dz = 0.35;
  SpeciesConfig e;
  e.name = "electron";
  e.q = -1;
  e.m = 1;
  e.load.ppc = 27;
  e.load.uth = 0.2;
  d.species.push_back(e);
  SpeciesConfig ion = e;
  ion.name = "ion";
  ion.q = +1;
  ion.m = 1836;
  ion.load.uth = 0.002;
  d.species.push_back(ion);
  Simulation sim(d);
  sim.initialize();
  const double total0 = sim.energies().total;
  double worst = 0;
  for (int s = 0; s < 300; ++s) {
    sim.step();
    worst = std::max(worst, std::abs(sim.energies().total - total0));
  }
  EXPECT_LT(worst, 0.01 * total0);
}

TEST(PlasmaPhysics, MomentumStaysBounded) {
  Deck d;
  d.grid.nx = d.grid.ny = d.grid.nz = 8;
  d.grid.dx = d.grid.dy = d.grid.dz = 0.35;
  SpeciesConfig e;
  e.name = "electron";
  e.q = -1;
  e.m = 1;
  e.load.ppc = 27;
  e.load.uth = 0.2;
  d.species.push_back(e);
  SpeciesConfig ion = e;
  ion.name = "ion";
  ion.q = +1;
  ion.m = 1836;
  ion.load.uth = 0.002;
  d.species.push_back(ion);
  Simulation sim(d);
  sim.initialize();
  auto total_p = [&sim] {
    double px = 0, py = 0, pz = 0;
    for (std::size_t s = 0; s < sim.num_species(); ++s) {
      const auto m = sim.species(s).momentum();
      px += m[0];
      py += m[1];
      pz += m[2];
    }
    return std::hypot(px, py, pz);
  };
  // Finite sampling gives a small nonzero initial momentum; the dynamics
  // must not amplify it (no self-forces / momentum-pumping bugs).
  const double p0 = total_p();
  // Thermal scale: per-species m*uth*weight*sqrt(N), combined in
  // quadrature. Heavy ions dominate despite their tiny uth.
  const double w = 0.35 * 0.35 * 0.35 / 27.0;
  const double n = std::sqrt(double(sim.species(0).size()));
  const double scale =
      w * n * std::hypot(1.0 * 0.2, 1836.0 * 0.002) * std::sqrt(3.0);
  EXPECT_LT(p0, 5 * scale);
  sim.run(200);
  EXPECT_LT(total_p(), 10 * std::max(p0, scale));
}

TEST(PlasmaPhysics, EmWaveDispersionInPlasma) {
  // Light in a plasma obeys omega^2 = omega_pe^2 + c^2 k^2: seed a
  // transverse EM mode in a uniform plasma and measure its frequency.
  Deck d;
  d.grid.nx = 32;
  d.grid.ny = d.grid.nz = 4;
  d.grid.dx = d.grid.dy = d.grid.dz = 0.5;
  SpeciesConfig e;
  e.name = "electron";
  e.q = -1;
  e.m = 1;
  e.load.ppc = 16;
  e.load.uth = 0.01;
  d.species.push_back(e);
  SpeciesConfig ion = e;
  ion.name = "ion";
  ion.q = +1;
  ion.m = 1836;
  ion.mobile = false;
  d.species.push_back(ion);

  Simulation sim(d);
  sim.initialize();
  const double k = 2.0 * std::numbers::pi / 16.0;  // mode 1 along x
  auto& f = sim.fields();
  for (int kk = 1; kk <= 4; ++kk)
    for (int j = 1; j <= 4; ++j)
      for (int i = 1; i <= 32; ++i)
        f.ey(i, j, kk) =
            grid::real(0.02 * std::sin(k * sim.local_grid().node_x(i)));
  std::vector<double> probe;
  for (int s = 0; s < 1024; ++s) {
    sim.step();
    probe.push_back(f.ey(5, 2, 2));
  }
  const auto power = fft::power_spectrum(probe);
  const auto peak = fft::peak_bin(power, 1, power.size());
  const double w = fft::bin_omega(peak, 2 * (power.size() - 1),
                                  sim.local_grid().dt());
  const double expected = std::sqrt(1.0 + k * k);  // omega_pe = 1, c = 1
  EXPECT_NEAR(w, expected, 0.06 * expected);
  // And it is clearly above both the vacuum and plasma frequencies alone.
  EXPECT_GT(w, 1.02);
  EXPECT_GT(w, k);
}

TEST(PlasmaPhysics, CleaningReducesGaussError) {
  // Decks start with E = 0 against a sampled (noisy) rho, so a finite Gauss
  // residual is present from step 0 (as in VPIC). Marder cleaning must pull
  // it down substantially relative to an uncleaned twin run.
  auto error_after = [](int clean_period) {
    Deck d = two_stream_deck(16, 16, 0.5);
    d.clean_period = clean_period;
    d.clean_passes = 2;
    Simulation sim(d);
    sim.initialize();
    sim.run(300);
    return sim.gauss_error();
  };
  const double uncleaned = error_after(0);
  const double cleaned = error_after(10);
  EXPECT_LT(cleaned, 0.5 * uncleaned);
}

}  // namespace
}  // namespace minivpic::sim
