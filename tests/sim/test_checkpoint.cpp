#include "sim/checkpoint.hpp"

#include <gtest/gtest.h>

#include <fstream>

#include "util/error.hpp"
#include "vmpi/runtime.hpp"

namespace minivpic::sim {
namespace {

Deck demo_deck() {
  Deck d;
  d.grid.nx = d.grid.ny = d.grid.nz = 6;
  d.grid.dx = d.grid.dy = d.grid.dz = 0.5;
  SpeciesConfig e;
  e.name = "electron";
  e.q = -1;
  e.m = 1;
  e.load.ppc = 4;
  e.load.uth = 0.15;
  d.species.push_back(e);
  SpeciesConfig ion = e;
  ion.name = "ion";
  ion.q = +1;
  ion.m = 1836;
  ion.load.uth = 0.001;
  d.species.push_back(ion);
  return d;
}

std::string temp_prefix(const char* tag) {
  return ::testing::TempDir() + "/minivpic_ckpt_" + tag;
}

void expect_fields_equal(const grid::FieldArray& a, const grid::FieldArray& b) {
  for (const auto c : grid::em_components()) {
    const grid::real* pa = grid::component_data(a, c);
    const grid::real* pb = grid::component_data(b, c);
    for (std::int64_t v = 0; v < a.grid().num_voxels(); ++v)
      ASSERT_EQ(pa[v], pb[v]) << "component mismatch at voxel " << v;
  }
}

void expect_species_equal(const particles::Species& a,
                          const particles::Species& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t n = 0; n < a.size(); ++n) {
    ASSERT_EQ(a[n].i, b[n].i) << n;
    ASSERT_EQ(a[n].dx, b[n].dx) << n;
    ASSERT_EQ(a[n].ux, b[n].ux) << n;
    ASSERT_EQ(a[n].w, b[n].w) << n;
  }
}

TEST(CheckpointTest, RoundTripResumesBitExact) {
  const Deck deck = demo_deck();
  const std::string prefix = temp_prefix("roundtrip");

  // Reference: straight 20-step run.
  Simulation ref(deck);
  ref.initialize();
  ref.run(10);
  Checkpoint::save(ref, prefix);
  ref.run(10);

  // Restarted: restore at step 10, run the same remaining 10.
  Simulation restarted(deck);
  Checkpoint::restore(restarted, prefix);
  EXPECT_EQ(restarted.step_index(), 10);
  restarted.run(10);

  EXPECT_EQ(restarted.step_index(), ref.step_index());
  EXPECT_DOUBLE_EQ(restarted.time(), ref.time());
  expect_fields_equal(ref.fields(), restarted.fields());
  for (std::size_t s = 0; s < ref.num_species(); ++s)
    expect_species_equal(ref.species(s), restarted.species(s));
  Checkpoint::remove_all(prefix);
}

TEST(CheckpointTest, ManifestNamesLatestCompleteSet) {
  const Deck deck = demo_deck();
  const std::string prefix = temp_prefix("manifest");
  Simulation a(deck);
  a.initialize();
  a.run(3);
  Checkpoint::save(a, prefix);
  a.run(4);
  Checkpoint::save(a, prefix);
  EXPECT_EQ(Checkpoint::latest_step(prefix), 7);
  EXPECT_EQ(Checkpoint::manifest_steps(prefix),
            (std::vector<std::int64_t>{3, 7}));
  Checkpoint::remove_all(prefix);
  EXPECT_EQ(Checkpoint::latest_step(prefix), -1);
}

TEST(CheckpointTest, RestoreIntoInitializedRejected) {
  const Deck deck = demo_deck();
  const std::string prefix = temp_prefix("init");
  Simulation a(deck);
  a.initialize();
  Checkpoint::save(a, prefix);
  EXPECT_THROW(Checkpoint::restore(a, prefix), Error);
  Checkpoint::remove_all(prefix);
}

TEST(CheckpointTest, MissingFileRejected) {
  Simulation sim(demo_deck());
  EXPECT_THROW(Checkpoint::restore(sim, "/nonexistent/prefix"), Error);
}

TEST(CheckpointTest, CorruptMagicRejected) {
  const Deck deck = demo_deck();
  const std::string prefix = temp_prefix("magic");
  {
    Simulation a(deck);
    a.initialize();
    Checkpoint::save(a, prefix);
  }
  {
    std::fstream f(Checkpoint::set_path(prefix, 0, 0),
                   std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.good());
    f.seekp(0);
    const char junk[4] = {'J', 'U', 'N', 'K'};
    f.write(junk, 4);
  }
  Simulation b(deck);
  EXPECT_THROW(Checkpoint::restore(b, prefix), Error);
  Checkpoint::remove_all(prefix);
}

TEST(CheckpointTest, TruncatedFileRejected) {
  const Deck deck = demo_deck();
  const std::string prefix = temp_prefix("trunc");
  {
    Simulation a(deck);
    a.initialize();
    Checkpoint::save(a, prefix);
  }
  // Truncate to half size.
  const std::string path = Checkpoint::set_path(prefix, 0, 0);
  {
    std::ifstream in(path, std::ios::binary);
    std::string data((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(data.data(), std::streamsize(data.size() / 2));
  }
  Simulation b(deck);
  EXPECT_THROW(Checkpoint::restore(b, prefix), Error);
  Checkpoint::remove_all(prefix);
}

TEST(CheckpointTest, GridShapeMismatchRejected) {
  const std::string prefix = temp_prefix("shape");
  {
    Simulation a(demo_deck());
    a.initialize();
    Checkpoint::save(a, prefix);
  }
  Deck other = demo_deck();
  other.grid.nx = 8;
  Simulation b(other);
  EXPECT_THROW(Checkpoint::restore(b, prefix), Error);
  Checkpoint::remove_all(prefix);
}

TEST(CheckpointTest, SpeciesMismatchRejected) {
  const std::string prefix = temp_prefix("species");
  {
    Simulation a(demo_deck());
    a.initialize();
    Checkpoint::save(a, prefix);
  }
  Deck other = demo_deck();
  other.species[0].m = 2.0;  // different electron mass
  Simulation b(other);
  EXPECT_THROW(Checkpoint::restore(b, prefix), Error);
  Checkpoint::remove_all(prefix);
}

TEST(CheckpointTest, MultiRankRoundTrip) {
  const Deck deck = demo_deck();
  const std::string prefix = temp_prefix("mr");
  vmpi::run(2, [&](vmpi::Comm& comm) {
    const vmpi::CartTopology topo({2, 1, 1}, {true, true, true});
    Simulation a(deck, &comm, &topo);
    a.initialize();
    a.run(5);
    Checkpoint::save(a, prefix);
    a.run(5);
    const auto ref_energy = a.energies();

    Simulation b(deck, &comm, &topo);
    Checkpoint::restore(b, prefix);
    b.run(5);
    const auto energy = b.energies();
    EXPECT_DOUBLE_EQ(energy.kinetic_total, ref_energy.kinetic_total);
    EXPECT_DOUBLE_EQ(energy.field.total(), ref_energy.field.total());
    expect_fields_equal(a.fields(), b.fields());
  });
  Checkpoint::remove_all(prefix, 2);
}

TEST(CheckpointTest, RankLayoutMismatchRejected) {
  const Deck deck = demo_deck();
  const std::string prefix = temp_prefix("layout");
  {
    Simulation a(deck);
    a.initialize();
    Checkpoint::save(a, prefix);
  }
  vmpi::run(2, [&](vmpi::Comm& comm) {
    const vmpi::CartTopology topo({2, 1, 1}, {true, true, true});
    Simulation b(deck, &comm, &topo);
    if (comm.rank() == 0) {
      // The rank0 file exists but was written by a 1-rank run; a 2-rank
      // restore is collective, so probe the set directly instead.
      EXPECT_THROW(Checkpoint::restore_step(b, prefix, 0), Error);
    }
  });
  Checkpoint::remove_all(prefix);
}

}  // namespace
}  // namespace minivpic::sim
