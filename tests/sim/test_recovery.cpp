// The headline chaos soak (docs/FAULTS.md): a 4-rank run that loses a rank
// mid-flight AND has a payload corrupted must recover through coordinated
// rollback and finish with fields, particles, and the energy history
// bit-identical to a fault-free run. Plus the failure edges: no checkpoint
// to roll back to, and an exhausted recovery budget.
#include <gtest/gtest.h>

#include <cstring>
#include <mutex>
#include <string>
#include <vector>

#include "grid/halo.hpp"
#include "particles/species.hpp"
#include "sim/checkpoint.hpp"
#include "sim/deck.hpp"
#include "sim/recovery.hpp"
#include "sim/simulation.hpp"
#include "telemetry/metrics.hpp"
#include "util/error.hpp"
#include "vmpi/cart.hpp"
#include "vmpi/fault.hpp"
#include "vmpi/runtime.hpp"

namespace minivpic::sim {
namespace {

constexpr int kRanks = 4;
constexpr std::int64_t kSteps = 24;

Deck soak_deck() { return two_stream_deck(/*cells=*/32, /*ppc=*/8); }

std::string temp_prefix(const char* tag) {
  return ::testing::TempDir() + "/minivpic_recovery_" + tag + ".ckpt";
}

/// Everything that defines one rank's final state, captured bitwise.
struct RankState {
  std::vector<std::vector<grid::real>> fields;  // one vector per component
  std::vector<std::vector<particles::Particle>> species;
  std::int64_t step = -1;
};

struct Snapshot {
  std::mutex mu;
  std::vector<RankState> ranks{std::size_t(kRanks)};
};

void capture(Snapshot& snap, Simulation& sim, vmpi::Comm& comm) {
  RankState st;
  for (const auto c : grid::em_components()) {
    const grid::real* p = grid::component_data(sim.fields(), c);
    st.fields.emplace_back(p, p + sim.fields().grid().num_voxels());
  }
  for (std::size_t s = 0; s < sim.num_species(); ++s) {
    const auto span = sim.species(s).particles();
    st.species.emplace_back(span.begin(), span.end());
  }
  st.step = sim.step_index();
  std::lock_guard<std::mutex> lock(snap.mu);
  snap.ranks[std::size_t(comm.rank())] = std::move(st);
}

void expect_bit_identical(const Snapshot& a, const Snapshot& b) {
  for (int r = 0; r < kRanks; ++r) {
    const RankState& x = a.ranks[std::size_t(r)];
    const RankState& y = b.ranks[std::size_t(r)];
    ASSERT_EQ(x.step, y.step) << "rank " << r;
    ASSERT_EQ(x.fields.size(), y.fields.size()) << "rank " << r;
    for (std::size_t c = 0; c < x.fields.size(); ++c) {
      ASSERT_EQ(x.fields[c].size(), y.fields[c].size());
      ASSERT_EQ(std::memcmp(x.fields[c].data(), y.fields[c].data(),
                            x.fields[c].size() * sizeof(grid::real)),
                0)
          << "field component " << c << " differs on rank " << r;
    }
    ASSERT_EQ(x.species.size(), y.species.size()) << "rank " << r;
    for (std::size_t s = 0; s < x.species.size(); ++s) {
      ASSERT_EQ(x.species[s].size(), y.species[s].size())
          << "particle count differs, species " << s << " rank " << r;
      ASSERT_EQ(std::memcmp(x.species[s].data(), y.species[s].data(),
                            x.species[s].size() * sizeof(particles::Particle)),
                0)
          << "particles differ, species " << s << " rank " << r;
    }
  }
}

TEST(RecoveryCoordinator, ChaosSoakMatchesFaultFreeRunBitForBit) {
  // Reference: the same deck, same coordinator, no faults.
  Snapshot clean_snap;
  RecoveryConfig clean_rc;
  clean_rc.ranks = kRanks;
  clean_rc.checkpoint_prefix = temp_prefix("clean");
  clean_rc.checkpoint_every = 6;
  clean_rc.comm_timeout = 60;
  clean_rc.integrity = true;
  clean_rc.on_final = [&](Simulation& sim, vmpi::Comm& comm) {
    capture(clean_snap, sim, comm);
  };
  RecoveryCoordinator clean(soak_deck(), clean_rc);
  const RecoveryReport clean_rep = clean.run(kSteps);
  ASSERT_TRUE(clean_rep.completed);
  EXPECT_EQ(clean_rep.rollbacks, 0);
  EXPECT_EQ(clean_rep.worlds, 1);

  // Chaos: a payload bit-flip at step 8 and a rank kill at step 15. Each
  // forces one rollback; both replay clean (scheduled faults fire once).
  vmpi::FaultPlane plane;
  plane.corrupt_message(/*rank=*/1, /*step=*/8, /*bit=*/5);
  plane.kill_rank(/*rank=*/2, /*step=*/15);
  telemetry::MetricsRegistry registry;
  Snapshot fault_snap;
  RecoveryConfig rc;
  rc.ranks = kRanks;
  rc.checkpoint_prefix = temp_prefix("chaos");
  rc.checkpoint_every = 6;
  rc.comm_timeout = 60;
  rc.integrity = true;
  rc.fault_plane = &plane;
  rc.metrics = &registry;
  rc.on_final = [&](Simulation& sim, vmpi::Comm& comm) {
    capture(fault_snap, sim, comm);
  };
  RecoveryCoordinator chaos(soak_deck(), rc);
  const RecoveryReport rep = chaos.run(kSteps);
  ASSERT_TRUE(rep.completed) << rep.last_fault;
  EXPECT_EQ(rep.rollbacks, 2);
  EXPECT_EQ(rep.worlds, 3);
  EXPECT_EQ(rep.final_step, kSteps);
  EXPECT_GE(rep.comm.faults_injected, 2);
  EXPECT_GE(rep.comm.faults_detected, 1);  // the CRC catch
  EXPECT_EQ(plane.injected().corrupted, 1);
  EXPECT_EQ(plane.injected().killed, 1);

  // Telemetry counters track the recovery story.
  EXPECT_EQ(registry.counter("recovery.rollbacks").value(), 2.0);
  EXPECT_EQ(registry.counter("recovery.worlds").value(), 3.0);
  EXPECT_GE(registry.counter("comm.faults_injected").value(), 2.0);
  EXPECT_GE(registry.counter("comm.faults_detected").value(), 1.0);

  // Energy history: same rows, exactly (rolled-back rows were truncated).
  ASSERT_EQ(chaos.history().size(), clean.history().size());
  for (std::size_t i = 0; i < clean.history().size(); ++i) {
    EXPECT_EQ(chaos.history()[i].step, clean.history()[i].step);
    EXPECT_EQ(chaos.history()[i].time, clean.history()[i].time);
    EXPECT_EQ(chaos.history()[i].field, clean.history()[i].field);
    EXPECT_EQ(chaos.history()[i].kinetic, clean.history()[i].kinetic);
    EXPECT_EQ(chaos.history()[i].total, clean.history()[i].total);
  }

  // And the capstone: per-rank fields and particles, bit for bit.
  expect_bit_identical(clean_snap, fault_snap);
}

TEST(RecoveryCoordinator, FaultFreeRunMatchesPlainWorldBitForBit) {
  // The coordinator with integrity framing on must reproduce a plain
  // vmpi::run of the same decomposition exactly: framing rides beside the
  // payload and never touches simulation state.
  Snapshot coord_snap;
  RecoveryConfig rc;
  rc.ranks = kRanks;
  rc.comm_timeout = 60;
  rc.integrity = true;
  rc.on_final = [&](Simulation& sim, vmpi::Comm& comm) {
    capture(coord_snap, sim, comm);
  };
  RecoveryCoordinator coord(soak_deck(), rc);
  ASSERT_TRUE(coord.run(kSteps).completed);

  Snapshot plain_snap;
  vmpi::run(kRanks, [&](vmpi::Comm& comm) {
    const vmpi::CartTopology topo({kRanks, 1, 1}, {true, true, true});
    const Deck deck = soak_deck();
    Simulation sim(deck, &comm, &topo);
    sim.initialize();
    sim.run(int(kSteps));
    capture(plain_snap, sim, comm);
  });

  expect_bit_identical(coord_snap, plain_snap);
}

TEST(RecoveryCoordinator, KillWithoutCheckpointIsUnrecoverable) {
  vmpi::FaultPlane plane;
  plane.kill_rank(1, 3);
  RecoveryConfig rc;
  rc.ranks = 2;
  rc.comm_timeout = 30;
  rc.fault_plane = &plane;
  RecoveryCoordinator coordinator(soak_deck(), rc);
  const RecoveryReport rep = coordinator.run(10);
  EXPECT_FALSE(rep.completed);
  EXPECT_EQ(rep.rollbacks, 0);
  EXPECT_NE(rep.last_fault.find("killed"), std::string::npos)
      << rep.last_fault;
}

TEST(RecoveryCoordinator, ExhaustedRecoveryBudgetFails) {
  vmpi::FaultPlane plane;
  plane.corrupt_message(1, 3, 0);
  RecoveryConfig rc;
  rc.ranks = 2;
  rc.checkpoint_prefix = temp_prefix("budget");
  rc.checkpoint_every = 2;
  rc.comm_timeout = 30;
  rc.integrity = true;
  rc.fault_plane = &plane;
  rc.max_recoveries = 0;  // detection works, but no rollback allowed
  RecoveryCoordinator coordinator(soak_deck(), rc);
  const RecoveryReport rep = coordinator.run(10);
  EXPECT_FALSE(rep.completed);
  EXPECT_EQ(rep.rollbacks, 0);
  EXPECT_FALSE(rep.last_fault.empty());
}

TEST(RecoveryCoordinator, PeriodicCheckpointRequiresPrefix) {
  RecoveryConfig rc;
  rc.ranks = 2;
  rc.checkpoint_every = 5;  // no prefix
  EXPECT_THROW(RecoveryCoordinator(soak_deck(), rc), Error);
}

}  // namespace
}  // namespace minivpic::sim
