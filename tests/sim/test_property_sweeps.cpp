// Property sweeps: the core invariants (Gauss residual constancy, particle
// conservation, energy sanity) must hold across the whole parameter space
// the decks roam — thermal spread, drift, CFL, resolution, cadence.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "sim/simulation.hpp"

namespace minivpic::sim {
namespace {

struct SweepParams {
  double uth;
  double drift;
  double cfl;
  int sort_period;
};

class CoreInvariants : public ::testing::TestWithParam<SweepParams> {};

TEST_P(CoreInvariants, GaussAndCountsHold) {
  const auto p = GetParam();
  Deck d;
  d.grid.nx = d.grid.ny = d.grid.nz = 6;
  d.grid.dx = d.grid.dy = d.grid.dz = 0.5;
  d.grid.cfl = p.cfl;
  d.sort_period = p.sort_period;
  SpeciesConfig e;
  e.name = "electron";
  e.q = -1;
  e.m = 1;
  e.load.ppc = 8;
  e.load.uth = p.uth;
  e.load.drift = {p.drift, -p.drift / 2, 0};
  d.species.push_back(e);
  SpeciesConfig ion = e;
  ion.name = "ion";
  ion.q = +1;
  ion.m = 1836;
  ion.load.uth = p.uth / 40;
  ion.load.drift = {0, 0, 0};
  d.species.push_back(ion);

  Simulation sim(d);
  sim.initialize();
  const auto n0 = sim.global_particle_count();
  const double g0 = sim.gauss_error();
  sim.run(15);
  EXPECT_EQ(sim.global_particle_count(), n0);
  // The residual must stay at round-off scale: allow growth from the
  // initial sampling-noise value but no blow-up.
  EXPECT_LT(sim.gauss_error(), g0 + 2e-3);
  // No particle may ever leave the interior.
  for (std::size_t s = 0; s < sim.num_species(); ++s) {
    for (const auto& part : sim.species(s).particles()) {
      const auto c = sim.local_grid().voxel_coords(part.i);
      ASSERT_TRUE(sim.local_grid().is_interior(c[0], c[1], c[2]));
      ASSERT_LE(std::abs(part.dx), 1.0f);
      ASSERT_LE(std::abs(part.dy), 1.0f);
      ASSERT_LE(std::abs(part.dz), 1.0f);
    }
  }
  // Energies remain finite and sane.
  const auto rep = sim.energies();
  EXPECT_TRUE(std::isfinite(rep.total));
  EXPECT_GE(rep.field.total(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    ParameterMatrix, CoreInvariants,
    ::testing::Values(SweepParams{0.01, 0.0, 0.99, 20},   // cold, quiet
                      SweepParams{0.1, 0.0, 0.99, 20},    // warm
                      SweepParams{0.4, 0.0, 0.99, 20},    // hot, many crossings
                      SweepParams{0.1, 0.5, 0.99, 20},    // drifting
                      SweepParams{0.1, 2.0, 0.99, 20},    // relativistic beam
                      SweepParams{0.2, 0.0, 0.30, 20},    // small CFL
                      SweepParams{0.2, 0.0, 0.70, 20},    // mid CFL
                      SweepParams{0.3, 0.3, 0.99, 1},     // sort every step
                      SweepParams{0.3, 0.3, 0.99, 0}));   // never sort

class GridShapes : public ::testing::TestWithParam<std::array<int, 3>> {};

TEST_P(GridShapes, AnisotropicBoxesWork) {
  const auto shape = GetParam();
  Deck d;
  d.grid.nx = shape[0];
  d.grid.ny = shape[1];
  d.grid.nz = shape[2];
  d.grid.dx = 0.4;
  d.grid.dy = 0.6;
  d.grid.dz = 0.3;
  SpeciesConfig e;
  e.name = "electron";
  e.q = -1;
  e.m = 1;
  e.load.ppc = 6;
  e.load.uth = 0.2;
  d.species.push_back(e);
  SpeciesConfig ion = e;
  ion.name = "ion";
  ion.q = +1;
  ion.m = 1836;
  ion.mobile = false;
  d.species.push_back(ion);

  Simulation sim(d);
  sim.initialize();
  const auto n0 = sim.global_particle_count();
  sim.run(10);
  EXPECT_EQ(sim.global_particle_count(), n0);
  EXPECT_LT(sim.gauss_error(), 2e-3);
}

INSTANTIATE_TEST_SUITE_P(Shapes, GridShapes,
                         ::testing::Values(std::array<int, 3>{16, 2, 2},
                                           std::array<int, 3>{2, 16, 2},
                                           std::array<int, 3>{2, 2, 16},
                                           std::array<int, 3>{1, 8, 8},
                                           std::array<int, 3>{8, 1, 1},
                                           std::array<int, 3>{5, 7, 3}));

}  // namespace
}  // namespace minivpic::sim
