// Collisions and startup settling wired through the simulation driver.
#include <gtest/gtest.h>

#include "sim/simulation.hpp"
#include "util/error.hpp"

namespace minivpic::sim {
namespace {

Deck aniso_deck() {
  Deck d;
  d.grid.nx = d.grid.ny = d.grid.nz = 6;
  d.grid.dx = d.grid.dy = d.grid.dz = 0.5;
  SpeciesConfig e;
  e.name = "electron";
  e.q = -1;
  e.m = 1;
  e.load.ppc = 32;
  e.load.uth3 = {0.04, 0.04, 0.16};
  d.species.push_back(e);
  SpeciesConfig ion = e;
  ion.name = "ion";
  ion.q = +1;
  ion.m = 1836;
  ion.load.uth3 = {0, 0, 0};
  ion.load.uth = 0.001;
  ion.mobile = false;
  d.species.push_back(ion);
  return d;
}

double anisotropy(const particles::Species& sp) {
  double tz = 0, tp = 0;
  for (const auto& p : sp.particles()) {
    tz += double(p.uz) * p.uz;
    tp += 0.5 * (double(p.ux) * p.ux + double(p.uy) * p.uy);
  }
  return tz / tp;
}

TEST(CollisionalSim, DeckDrivesIsotropization) {
  Deck with = aniso_deck();
  CollisionSpec cs;
  cs.species_a = cs.species_b = "electron";
  cs.nu_scale = 3e-4;
  cs.period = 2;
  with.collisions.push_back(cs);
  Deck without = aniso_deck();

  Simulation sim_with(with), sim_without(without);
  sim_with.initialize();
  sim_without.initialize();
  sim_with.run(120);
  sim_without.run(120);
  EXPECT_GT(sim_with.particle_stats().collision_pairs, 0);
  EXPECT_EQ(sim_without.particle_stats().collision_pairs, 0);
  EXPECT_LT(anisotropy(sim_with.species(0)),
            0.8 * anisotropy(sim_without.species(0)));
  EXPECT_GT(sim_with.timings().collide.total_seconds(), 0.0);
}

TEST(CollisionalSim, CollisionsPreserveTotalEnergyBudget) {
  Deck d = aniso_deck();
  CollisionSpec cs;
  cs.species_a = cs.species_b = "electron";
  cs.nu_scale = 3e-4;
  cs.period = 2;
  d.collisions.push_back(cs);
  Simulation sim(d);
  sim.initialize();
  const double e0 = sim.energies().total;
  sim.run(150);
  EXPECT_NEAR(sim.energies().total, e0, 0.02 * e0);
}

TEST(CollisionalSim, UnknownSpeciesRejected) {
  Deck d = aniso_deck();
  CollisionSpec cs;
  cs.species_a = "electron";
  cs.species_b = "positron";
  cs.nu_scale = 1e-4;
  d.collisions.push_back(cs);
  EXPECT_THROW(Simulation{d}, Error);
}

TEST(CollisionalSim, InvalidSpecRejected) {
  Deck d = aniso_deck();
  CollisionSpec cs;
  cs.species_a = cs.species_b = "electron";
  cs.nu_scale = -1;
  d.collisions.push_back(cs);
  EXPECT_THROW(Simulation{d}, Error);
  d.collisions[0].nu_scale = 1e-4;
  d.collisions[0].period = 0;
  EXPECT_THROW(Simulation{d}, Error);
}

TEST(CollisionalSim, InterspeciesThroughDeck) {
  Deck d = aniso_deck();
  d.species[1].mobile = true;  // let ions participate
  CollisionSpec cs;
  cs.species_a = "electron";
  cs.species_b = "ion";
  cs.nu_scale = 1e-4;
  cs.period = 3;
  d.collisions.push_back(cs);
  Simulation sim(d);
  sim.initialize();
  sim.run(30);
  EXPECT_GT(sim.particle_stats().collision_pairs, 0);
}

TEST(SettleTest, InitialSettleReducesGaussError) {
  Deck noisy = aniso_deck();
  noisy.species[1].load.uth = 0.001;
  // Use different seeds so rho has genuine shot noise at t=0.
  noisy.species[0].load.seed = 1;
  noisy.species[1].load.seed = 2;
  Deck settled = noisy;
  settled.init_settle_passes = 40;

  Simulation a(noisy), b(settled);
  a.initialize();
  b.initialize();
  EXPECT_LT(b.gauss_error(), 0.6 * a.gauss_error());
}

}  // namespace
}  // namespace minivpic::sim
