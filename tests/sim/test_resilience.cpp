// End-to-end resilience proof: every injected checkpoint corruption must be
// detected by checksum (never silently restored), every injected NaN must
// be caught by the HealthMonitor within its scan period with the configured
// policy applied, and a killed campaign must resume from its rotated sets
// bit-exactly matching an uninterrupted run.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "sim/checkpoint.hpp"
#include "sim/deck_io.hpp"
#include "sim/fault_injection.hpp"
#include "sim/health.hpp"
#include "util/crc32.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "vmpi/runtime.hpp"

namespace minivpic::sim {
namespace {

Deck demo_deck() {
  Deck d;
  d.grid.nx = d.grid.ny = d.grid.nz = 6;
  d.grid.dx = d.grid.dy = d.grid.dz = 0.5;
  SpeciesConfig e;
  e.name = "electron";
  e.q = -1;
  e.m = 1;
  e.load.ppc = 4;
  e.load.uth = 0.15;
  d.species.push_back(e);
  SpeciesConfig ion = e;
  ion.name = "ion";
  ion.q = +1;
  ion.m = 1836;
  ion.load.uth = 0.001;
  d.species.push_back(ion);
  return d;
}

std::string temp_prefix(const char* tag) {
  return ::testing::TempDir() + "/minivpic_res_" + tag;
}

/// Quiet the expected fallback warnings so corruption tests don't spam.
struct LogSilencer {
  LogLevel prev = log_level();
  LogSilencer() { set_log_level(LogLevel::kError); }
  ~LogSilencer() { set_log_level(prev); }
};

std::string error_of(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const Error& e) {
    return e.what();
  }
  return "";
}

// -- checkpoint corruption paths ---------------------------------------------

TEST(ResilienceCheckpoint, TruncatedHeaderRejected) {
  const Deck deck = demo_deck();
  const std::string prefix = temp_prefix("hdr");
  Simulation a(deck);
  a.initialize();
  Checkpoint::save(a, prefix);
  FaultInjector::truncate_file(Checkpoint::set_path(prefix, 0, 0), 10);
  Simulation b(deck);
  LogSilencer quiet;
  const std::string what =
      error_of([&] { Checkpoint::restore(b, prefix); });
  EXPECT_NE(what.find("truncated"), std::string::npos) << what;
  Checkpoint::remove_all(prefix);
}

TEST(ResilienceCheckpoint, BitFlippedFieldSectionRejected) {
  const Deck deck = demo_deck();
  const std::string prefix = temp_prefix("fieldflip");
  Simulation a(deck);
  a.initialize();
  a.run(2);
  Checkpoint::save(a, prefix);
  FaultInjector::corrupt_section(Checkpoint::set_path(prefix, 2, 0),
                                 Checkpoint::kFieldSection,
                                 std::uint32_t(grid::Component::kEy));
  Simulation b(deck);
  LogSilencer quiet;
  const std::string what =
      error_of([&] { Checkpoint::restore(b, prefix); });
  EXPECT_NE(what.find("checksum mismatch"), std::string::npos) << what;
  Checkpoint::remove_all(prefix);
}

TEST(ResilienceCheckpoint, BitFlippedParticleSectionRejected) {
  const Deck deck = demo_deck();
  const std::string prefix = temp_prefix("partflip");
  Simulation a(deck);
  a.initialize();
  a.run(2);
  Checkpoint::save(a, prefix);
  FaultInjector::corrupt_section(Checkpoint::set_path(prefix, 2, 0),
                                 Checkpoint::kSpeciesSection, 1);
  Simulation b(deck);
  LogSilencer quiet;
  const std::string what =
      error_of([&] { Checkpoint::restore(b, prefix); });
  EXPECT_NE(what.find("checksum mismatch"), std::string::npos) << what;
  Checkpoint::remove_all(prefix);
}

TEST(ResilienceCheckpoint, VersionMismatchRejected) {
  const Deck deck = demo_deck();
  const std::string prefix = temp_prefix("version");
  Simulation a(deck);
  a.initialize();
  Checkpoint::save(a, prefix);
  // Patch the version field (file offset 4) and re-stamp the header CRC
  // (the 52 checksummed bytes precede it) so the *version check itself* is
  // what rejects the file, not the checksum.
  const std::string path = Checkpoint::set_path(prefix, 0, 0);
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.good());
    const std::uint32_t bogus_version = 99;
    f.seekp(4);
    f.write(reinterpret_cast<const char*>(&bogus_version), 4);
    char head[52];
    f.seekg(0);
    f.read(head, 52);
    const std::uint32_t crc = Crc32::of(head, 52);
    f.seekp(52);
    f.write(reinterpret_cast<const char*>(&crc), 4);
    ASSERT_TRUE(f.good());
  }
  Simulation b(deck);
  LogSilencer quiet;
  const std::string what =
      error_of([&] { Checkpoint::restore(b, prefix); });
  EXPECT_NE(what.find("unsupported checkpoint version"), std::string::npos)
      << what;
  Checkpoint::remove_all(prefix);
}

TEST(ResilienceCheckpoint, CorruptionFallsBackToOlderRotation) {
  const Deck deck = demo_deck();
  const std::string prefix = temp_prefix("fallback");
  Simulation a(deck);
  a.initialize();
  a.run(5);
  Checkpoint::save(a, prefix);
  a.run(5);
  Checkpoint::save(a, prefix);
  ASSERT_EQ(Checkpoint::latest_step(prefix), 10);

  FaultInjector::corrupt_section(Checkpoint::set_path(prefix, 10, 0),
                                 Checkpoint::kFieldSection,
                                 std::uint32_t(grid::Component::kEx));
  Simulation b(deck);
  LogSilencer quiet;
  Checkpoint::restore(b, prefix);
  EXPECT_EQ(b.step_index(), 5);  // recovered from the previous rotation
  b.run(1);                      // and it is steppable
  Checkpoint::remove_all(prefix);
}

TEST(ResilienceCheckpoint, MissingRankFileFallsBackInAgreement) {
  const Deck deck = demo_deck();
  const std::string prefix = temp_prefix("missingrank");
  vmpi::run(2, [&](vmpi::Comm& comm) {
    const vmpi::CartTopology topo({2, 1, 1}, {true, true, true});
    Simulation a(deck, &comm, &topo);
    a.initialize();
    a.run(5);
    Checkpoint::save(a, prefix);
    a.run(5);
    Checkpoint::save(a, prefix);
    comm.barrier();
    if (comm.rank() == 0) {
      // Lose rank 1's newest file: the set at step 10 is incomplete.
      ASSERT_EQ(std::remove(Checkpoint::set_path(prefix, 10, 1).c_str()), 0);
    }
    comm.barrier();

    Simulation b(deck, &comm, &topo);
    LogSilencer quiet;
    Checkpoint::restore(b, prefix);
    // Rank 0's step-10 file is intact, but restore must agree across ranks
    // and fall back to the complete step-5 set on *both*.
    EXPECT_EQ(b.step_index(), 5);
  });
  Checkpoint::remove_all(prefix, 2);
}

TEST(ResilienceCheckpoint, RotationPrunesBeyondKeep) {
  const Deck deck = demo_deck();
  const std::string prefix = temp_prefix("rotate");
  Simulation a(deck);
  a.initialize();
  a.run(2);
  Checkpoint::save(a, prefix, 2);
  a.run(2);
  Checkpoint::save(a, prefix, 2);
  a.run(2);
  Checkpoint::save(a, prefix, 2);
  EXPECT_EQ(Checkpoint::manifest_steps(prefix),
            (std::vector<std::int64_t>{4, 6}));
  // The pruned set's file is gone from disk, not just from the manifest.
  std::ifstream pruned(Checkpoint::set_path(prefix, 2, 0));
  EXPECT_FALSE(pruned.good());
  Checkpoint::remove_all(prefix);
}

TEST(ResilienceCheckpoint, SaveLeavesNoTempFiles) {
  const Deck deck = demo_deck();
  const std::string prefix = temp_prefix("tmp");
  Simulation a(deck);
  a.initialize();
  Checkpoint::save(a, prefix);
  std::ifstream tmp(Checkpoint::set_path(prefix, 0, 0) + ".tmp");
  EXPECT_FALSE(tmp.good());
  std::ifstream mtmp(Checkpoint::manifest_path(prefix) + ".tmp");
  EXPECT_FALSE(mtmp.good());
  Checkpoint::remove_all(prefix);
}

// -- kill / resume ------------------------------------------------------------

TEST(ResilienceResume, KillAndResumeMatchesUninterrupted) {
  const Deck deck = demo_deck();
  const std::string prefix = temp_prefix("resume");
  constexpr int kTotal = 20, kEvery = 5, kCrashAt = 13;

  // Reference: uninterrupted run to kTotal.
  Simulation ref(deck);
  ref.initialize();
  ref.run(kTotal);

  // Victim: periodic checkpoints every kEvery steps, "crash" at kCrashAt
  // (the object is simply abandoned — the durable state is on disk).
  {
    Simulation victim(deck);
    victim.initialize();
    while (victim.step_index() < kCrashAt) {
      victim.step();
      if (victim.step_index() % kEvery == 0)
        Checkpoint::save(victim, prefix, 2);
    }
  }
  ASSERT_EQ(Checkpoint::latest_step(prefix), 10);

  // Resume from the rotated set and run to the same endpoint.
  Simulation resumed(deck);
  Checkpoint::restore(resumed, prefix);
  EXPECT_EQ(resumed.step_index(), 10);
  while (resumed.step_index() < kTotal) resumed.step();

  EXPECT_EQ(resumed.step_index(), ref.step_index());
  EXPECT_DOUBLE_EQ(resumed.time(), ref.time());
  EXPECT_EQ(resumed.global_particle_count(), ref.global_particle_count());
  const auto ea = ref.energies(), eb = resumed.energies();
  EXPECT_DOUBLE_EQ(eb.total, ea.total);
  for (const auto c : grid::em_components()) {
    const grid::real* pa = grid::component_data(ref.fields(), c);
    const grid::real* pb = grid::component_data(resumed.fields(), c);
    for (std::int64_t v = 0; v < ref.fields().grid().num_voxels(); ++v)
      ASSERT_EQ(pa[v], pb[v]) << "field mismatch at voxel " << v;
  }
  Checkpoint::remove_all(prefix);
}

// -- health sentinels ---------------------------------------------------------

TEST(ResilienceHealth, FieldNaNCaughtWithinPeriodAndAborts) {
  const Deck deck = demo_deck();
  Simulation sim(deck);
  sim.initialize();
  HealthConfig cfg;
  cfg.period = 4;
  cfg.policy = HealthPolicy::kAbort;
  HealthMonitor monitor(sim, cfg);

  FaultInjector injector;
  injector.schedule_field_nan(6, grid::Component::kEz);

  LogSilencer quiet;
  std::string what;
  std::int64_t caught_at = -1;
  try {
    while (sim.step_index() < 20) {
      sim.step();
      injector.apply_due(sim);
      monitor.check();
    }
  } catch (const Error& e) {
    what = e.what();
    caught_at = sim.step_index();
  }
  EXPECT_NE(what.find("health fault"), std::string::npos) << what;
  EXPECT_EQ(caught_at, 8);  // injected at 6, scan period 4 -> caught at 8
  EXPECT_GT(monitor.last_report().nan_field_values, 0);
}

TEST(ResilienceHealth, ParticleNaNCaughtWithWarnPolicy) {
  const Deck deck = demo_deck();
  Simulation sim(deck);
  sim.initialize();
  HealthConfig cfg;
  cfg.period = 2;
  cfg.policy = HealthPolicy::kWarn;
  HealthMonitor monitor(sim, cfg);

  sim.run(2);
  EXPECT_EQ(monitor.check(), HealthMonitor::Action::kHealthy);
  FaultInjector::poison_particle(sim, 0, 3);
  sim.run(2);
  LogSilencer quiet;
  EXPECT_EQ(monitor.check(), HealthMonitor::Action::kWarned);
  EXPECT_GT(monitor.last_report().nan_particles, 0);
  // warn keeps running: a further check still scans without throwing
  sim.run(2);
  EXPECT_EQ(monitor.check(), HealthMonitor::Action::kWarned);
}

TEST(ResilienceHealth, EnergyBlowupDetected) {
  const Deck deck = demo_deck();
  Simulation sim(deck);
  sim.initialize();
  HealthConfig cfg;
  cfg.period = 1;
  cfg.policy = HealthPolicy::kWarn;
  // A thermal plasma holds its energy; any growth beyond 1e-6x reference
  // must trip the sentinel once we pump the fields by hand.
  cfg.max_energy_growth = 1.5;
  HealthMonitor monitor(sim, cfg);
  sim.step();
  ASSERT_TRUE(monitor.scan().ok());
  for (auto& v : sim.fields().ex_span()) v += 10.0f;  // synthetic blow-up
  LogSilencer quiet;
  const HealthReport& r = monitor.scan();
  EXPECT_TRUE(r.energy_fault);
  EXPECT_FALSE(r.ok());
}

TEST(ResilienceHealth, ParticleLossDetected) {
  const Deck deck = demo_deck();
  Simulation sim(deck);
  sim.initialize();
  HealthConfig cfg;
  cfg.period = 1;
  // Electrons are half of all particles, so dropping half of them loses
  // 25% of the global count — comfortably past a 20% tolerance.
  cfg.max_particle_loss = 0.2;
  HealthMonitor monitor(sim, cfg);
  ASSERT_TRUE(monitor.scan().ok());
  auto& sp = sim.species(0);
  const std::size_t half = sp.size() / 2;
  for (std::size_t n = 0; n < half; ++n) sp.remove(sp.size() - 1);
  const HealthReport& r = monitor.scan();
  EXPECT_TRUE(r.particle_fault);
}

TEST(ResilienceHealth, MultiRankVerdictIsGlobal) {
  const Deck deck = demo_deck();
  vmpi::run(2, [&](vmpi::Comm& comm) {
    const vmpi::CartTopology topo({2, 1, 1}, {true, true, true});
    Simulation sim(deck, &comm, &topo);
    sim.initialize();
    HealthConfig cfg;
    cfg.period = 1;
    HealthMonitor monitor(sim, cfg);
    // NaN on rank 0 only: both ranks must reach the same fault verdict.
    if (comm.rank() == 0)
      FaultInjector::poison_field(sim, grid::Component::kEx);
    const HealthReport& r = monitor.scan();
    EXPECT_TRUE(r.nan_fault);
    EXPECT_GT(r.nan_field_values, 0);
  });
}

TEST(ResilienceHealth, RollbackRestoresThenAbortsOnRecurrence) {
  const Deck deck = demo_deck();
  const std::string prefix = temp_prefix("rollback");
  Simulation sim(deck);
  sim.initialize();
  sim.run(5);
  Checkpoint::save(sim, prefix);

  HealthConfig cfg;
  cfg.period = 4;
  cfg.policy = HealthPolicy::kRollback;
  cfg.rollback_window = 100;
  HealthMonitor monitor(sim, cfg, prefix);

  // The scheduled fault stays armed, so the replay after rollback hits the
  // same NaN at the same step — the deterministic-fault recurrence case.
  FaultInjector injector;
  injector.schedule_field_nan(7, grid::Component::kEy);

  LogSilencer quiet;
  bool rolled_back = false;
  std::string what;
  try {
    while (sim.step_index() < 30) {
      sim.step();
      injector.apply_due(sim);
      if (monitor.check() == HealthMonitor::Action::kRolledBack) {
        rolled_back = true;
        EXPECT_EQ(sim.step_index(), 5);  // back at the last good set
        EXPECT_TRUE(monitor.scan().ok()) << "rollback left NaN state";
      }
    }
  } catch (const Error& e) {
    what = e.what();
  }
  EXPECT_TRUE(rolled_back);
  EXPECT_NE(what.find("recurred"), std::string::npos) << what;
  Checkpoint::remove_all(prefix);
}

TEST(ResilienceHealth, RollbackWithoutCheckpointAborts) {
  const Deck deck = demo_deck();
  Simulation sim(deck);
  sim.initialize();
  HealthConfig cfg;
  cfg.period = 1;
  cfg.policy = HealthPolicy::kRollback;
  HealthMonitor monitor(sim, cfg, "");  // no prefix -> nothing to restore
  sim.step();
  FaultInjector::poison_field(sim, grid::Component::kEx);
  LogSilencer quiet;
  EXPECT_THROW(monitor.check(), Error);
}

// -- deck / config plumbing ---------------------------------------------------

TEST(ResilienceConfig, DeckControlKeysParsed) {
  std::istringstream deck_text(R"(
    [grid]
    nx = 8
    [species electron]
    q = -1  m = 1  ppc = 2
    [control]
    checkpoint_every = 250  checkpoint_keep = 3
    health_period = 50  health_policy = rollback
    health_max_energy_growth = 5.5  health_max_particle_loss = 0.1
    health_rollback_window = 40
  )");
  const Deck d = parse_deck(deck_text);
  EXPECT_EQ(d.checkpoint_every, 250);
  EXPECT_EQ(d.checkpoint_keep, 3);
  EXPECT_EQ(d.health.period, 50);
  EXPECT_EQ(d.health.policy, HealthPolicy::kRollback);
  EXPECT_DOUBLE_EQ(d.health.max_energy_growth, 5.5);
  EXPECT_DOUBLE_EQ(d.health.max_particle_loss, 0.1);
  EXPECT_EQ(d.health.rollback_window, 40);
}

TEST(ResilienceConfig, BadHealthPolicyRejected) {
  std::istringstream deck_text(R"(
    [grid]
    nx = 8
    [species electron]
    q = -1  m = 1  ppc = 2
    [control]
    health_policy = explode
  )");
  EXPECT_THROW(parse_deck(deck_text), Error);
}

TEST(ResilienceConfig, ScheduledFaultsFireOnlyAtTheirStep) {
  const Deck deck = demo_deck();
  Simulation sim(deck);
  sim.initialize();
  FaultInjector injector;
  injector.schedule_particle_nan(2, 0, 0);
  EXPECT_EQ(injector.apply_due(sim), 0);  // step 0
  sim.run(2);
  EXPECT_EQ(injector.apply_due(sim), 1);  // step 2: fires
  sim.step();
  EXPECT_EQ(injector.apply_due(sim), 0);  // step 3: not again
}

}  // namespace
}  // namespace minivpic::sim
