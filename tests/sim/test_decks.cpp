#include "sim/deck.hpp"

#include <gtest/gtest.h>

#include "sim/simulation.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace minivpic::sim {
namespace {

TEST(DeckTest, PlasmaOscillationDeckWellFormed) {
  const Deck d = plasma_oscillation_deck();
  ASSERT_EQ(d.species.size(), 2u);
  EXPECT_EQ(d.species[0].name, "electron");
  EXPECT_FALSE(d.species[1].mobile);
  EXPECT_FALSE(d.laser.has_value());
  Simulation sim(d);
  sim.initialize();
  EXPECT_GT(sim.global_particle_count(), 0);
}

TEST(DeckTest, PerturbationSeedsVelocity) {
  const Deck d = plasma_oscillation_deck(16, 8, 0.02);
  Simulation sim(d);
  sim.initialize();
  // Electrons carry the sinusoidal drift: ux spread must reflect it.
  double min_ux = 1e9, max_ux = -1e9;
  for (const auto& p : sim.species(0).particles()) {
    min_ux = std::min(min_ux, double(p.ux));
    max_ux = std::max(max_ux, double(p.ux));
  }
  EXPECT_NEAR(max_ux, 0.02, 3e-3);
  EXPECT_NEAR(min_ux, -0.02, 3e-3);
}

TEST(DeckTest, TwoStreamDeckBalanced) {
  const Deck d = two_stream_deck(16, 8, 0.25);
  ASSERT_EQ(d.species.size(), 3u);
  EXPECT_DOUBLE_EQ(d.species[0].load.drift[0], 0.25);
  EXPECT_DOUBLE_EQ(d.species[1].load.drift[0], -0.25);
  EXPECT_DOUBLE_EQ(d.species[0].load.density + d.species[1].load.density,
                   d.species[2].load.density);
}

TEST(DeckTest, WeibelAnisotropy) {
  const Deck d = weibel_deck(8, 8, 0.4, 0.02);
  EXPECT_DOUBLE_EQ(d.species[0].load.uth3[2], 0.4);
  EXPECT_DOUBLE_EQ(d.species[0].load.uth3[0], 0.02);
}

TEST(DeckTest, LpiDeckMatchesParameters) {
  LpiParams p;
  p.a0 = 0.03;
  p.n_over_nc = 0.1;
  p.te_kev = 2.6;
  const Deck d = lpi_deck(p);
  ASSERT_TRUE(d.laser.has_value());
  EXPECT_NEAR(d.laser->omega0, units::omega0_over_omegape(0.1), 1e-12);
  EXPECT_DOUBLE_EQ(d.laser->a0, 0.03);
  EXPECT_EQ(d.grid.boundary[grid::kFaceXLo], grid::BoundaryKind::kAbsorbing);
  EXPECT_EQ(d.grid.boundary[grid::kFaceYLo], grid::BoundaryKind::kPeriodic);
  EXPECT_EQ(d.particle_bc[grid::kFaceXLo], particles::ParticleBc::kAbsorb);
  EXPECT_NEAR(d.species[0].load.uth, units::uth_from_te_kev(2.6), 1e-12);
  EXPECT_FALSE(d.species[1].mobile);
}

TEST(DeckTest, LpiVacuumGap) {
  LpiParams p;
  p.nx = 96;
  p.vacuum_cells = 16;
  p.dx = 0.25;
  const Deck d = lpi_deck(p);
  const auto& profile = d.species[0].load.profile;
  ASSERT_TRUE(profile);
  EXPECT_EQ(profile(1.0, 0, 0), 0.0);            // vacuum gap
  EXPECT_EQ(profile(16 * 0.25 + 0.1, 0, 0), 1.0);  // plasma
  EXPECT_EQ(profile(96 * 0.25 - 0.1, 0, 0), 0.0); // far vacuum gap
}

TEST(DeckTest, LpiValidation) {
  LpiParams p;
  p.n_over_nc = 0.3;  // >= quarter critical
  EXPECT_THROW(lpi_deck(p), Error);
  p = {};
  p.vacuum_cells = 100;
  p.nx = 96;
  EXPECT_THROW(lpi_deck(p), Error);
}

TEST(DeckTest, LpiRunsAFewSteps) {
  LpiParams p;
  p.nx = 48;
  p.ny = p.nz = 2;
  p.ppc = 4;
  p.vacuum_cells = 8;
  Simulation sim(lpi_deck(p));
  sim.initialize();
  EXPECT_GT(sim.global_particle_count(), 0);
  sim.run(10);
  EXPECT_GT(sim.energies().field.total(), 0.0);  // laser is feeding energy
}

}  // namespace
}  // namespace minivpic::sim
