#include "sim/simulation.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"
#include "vmpi/runtime.hpp"

namespace minivpic::sim {
namespace {

Deck small_plasma_deck() {
  Deck d;
  d.grid.nx = d.grid.ny = d.grid.nz = 6;
  d.grid.dx = d.grid.dy = d.grid.dz = 0.5;
  SpeciesConfig e;
  e.name = "electron";
  e.q = -1;
  e.m = 1;
  e.load.ppc = 4;
  e.load.uth = 0.1;
  d.species.push_back(e);
  SpeciesConfig ion;
  ion.name = "ion";
  ion.q = +1;
  ion.m = 1836;
  ion.load.ppc = 4;
  ion.mobile = false;
  d.species.push_back(ion);
  return d;
}

TEST(SimulationTest, ConstructionValidation) {
  Deck d = small_plasma_deck();
  d.species.clear();
  EXPECT_THROW(Simulation{d}, Error);
  d = small_plasma_deck();
  d.sort_period = -1;
  EXPECT_THROW(Simulation{d}, Error);
  d = small_plasma_deck();
  d.clean_passes = 0;
  EXPECT_THROW(Simulation{d}, Error);
}

TEST(SimulationTest, LifecycleEnforced) {
  Simulation sim(small_plasma_deck());
  EXPECT_THROW(sim.step(), Error);
  sim.initialize();
  EXPECT_THROW(sim.initialize(), Error);
  EXPECT_NO_THROW(sim.step());
  EXPECT_EQ(sim.step_index(), 1);
  EXPECT_NEAR(sim.time(), sim.local_grid().dt(), 1e-12);
}

TEST(SimulationTest, LoadsExpectedParticles) {
  Simulation sim(small_plasma_deck());
  sim.initialize();
  EXPECT_EQ(sim.num_species(), 2u);
  EXPECT_EQ(sim.species(0).size(), 4u * 216u);
  EXPECT_EQ(sim.global_particle_count(), 2 * 4 * 216);
  EXPECT_NE(sim.find_species("electron"), nullptr);
  EXPECT_NE(sim.find_species("ion"), nullptr);
  EXPECT_EQ(sim.find_species("positron"), nullptr);
}

TEST(SimulationTest, ImmobileSpeciesStaysPut) {
  Simulation sim(small_plasma_deck());
  sim.initialize();
  const auto& ion = *sim.find_species("ion");
  const particles::Particle p0 = ion[0];
  sim.run(5);
  EXPECT_EQ(ion[0].dx, p0.dx);
  EXPECT_EQ(ion[0].i, p0.i);
}

TEST(SimulationTest, EnergiesReported) {
  Simulation sim(small_plasma_deck());
  sim.initialize();
  sim.run(3);
  const auto rep = sim.energies();
  ASSERT_EQ(rep.species_kinetic.size(), 2u);
  EXPECT_GT(rep.species_kinetic[0], 0.0);   // warm electrons
  EXPECT_GE(rep.field.total(), 0.0);
  EXPECT_NEAR(rep.total, rep.field.total() + rep.kinetic_total, 1e-12);
}

TEST(SimulationTest, StatsAccumulate) {
  Simulation sim(small_plasma_deck());
  sim.initialize();
  sim.run(4);
  const auto& st = sim.particle_stats();
  EXPECT_EQ(st.pushed, 4 * 4 * 216);  // only mobile electrons
  EXPECT_GE(st.crossings, 0);
  EXPECT_EQ(st.absorbed, 0);
  EXPECT_GT(sim.timings().push.total_seconds(), 0.0);
  EXPECT_EQ(sim.timings().push.laps(), 4u);
}

TEST(SimulationTest, GaussErrorSmallAndBounded) {
  Simulation sim(small_plasma_deck());
  sim.initialize();
  const double e0 = sim.gauss_error();
  EXPECT_LT(e0, 1e-4);  // neutral start
  sim.run(10);
  EXPECT_LT(sim.gauss_error(), 1e-3);
}

TEST(SimulationTest, SortPeriodKeepsPhysicsIdentical) {
  // Sorting is a pure reordering: a run with aggressive sorting must give
  // the same energies as an unsorted run (float reduction order changes
  // slightly; tolerances reflect that).
  Deck a = small_plasma_deck();
  a.sort_period = 0;
  Deck b = small_plasma_deck();
  b.sort_period = 1;
  Simulation sa(a), sb(b);
  sa.initialize();
  sb.initialize();
  sa.run(10);
  sb.run(10);
  const auto ra = sa.energies(), rb = sb.energies();
  EXPECT_NEAR(ra.kinetic_total, rb.kinetic_total,
              1e-4 * std::abs(ra.kinetic_total));
  EXPECT_NEAR(ra.field.total(), rb.field.total(),
              1e-3 * std::max(ra.field.total(), 1e-12));
}

TEST(SimulationTest, MultiRankMatchesSingleRank) {
  // The decomposition must not change the physics: global energies after a
  // few steps agree between 1-rank and 2-rank runs of the same deck.
  const Deck deck = small_plasma_deck();
  Simulation solo(deck);
  solo.initialize();
  solo.run(5);
  const auto ref = solo.energies();
  const auto ref_count = solo.global_particle_count();

  vmpi::run(2, [&](vmpi::Comm& comm) {
    const vmpi::CartTopology topo({2, 1, 1}, {true, true, true});
    Simulation sim(deck, &comm, &topo);
    sim.initialize();
    EXPECT_EQ(sim.global_particle_count(), ref_count);
    sim.run(5);
    const auto rep = sim.energies();
    EXPECT_NEAR(rep.kinetic_total, ref.kinetic_total,
                1e-3 * std::abs(ref.kinetic_total));
    EXPECT_NEAR(rep.field.total(), ref.field.total(),
                1e-2 * std::max(ref.field.total(), 1e-10));
    EXPECT_EQ(sim.global_particle_count(), ref_count);
  });
}

TEST(SimulationTest, FourRankDecompositions) {
  const Deck deck = small_plasma_deck();
  Simulation solo(deck);
  solo.initialize();
  solo.run(3);
  const auto ref = solo.energies();
  for (const auto dims : {std::array<int, 3>{2, 2, 1}, std::array<int, 3>{1, 2, 2}}) {
    vmpi::run(4, [&](vmpi::Comm& comm) {
      const vmpi::CartTopology topo(dims, {true, true, true});
      Simulation sim(deck, &comm, &topo);
      sim.initialize();
      sim.run(3);
      const auto rep = sim.energies();
      EXPECT_NEAR(rep.kinetic_total, ref.kinetic_total,
                  1e-3 * std::abs(ref.kinetic_total));
    });
  }
}

TEST(SimulationTest, TopologyMismatchRejected) {
  const Deck deck = small_plasma_deck();
  vmpi::run(2, [&](vmpi::Comm& comm) {
    const vmpi::CartTopology topo({3, 1, 1}, {true, true, true});
    EXPECT_THROW(Simulation(deck, &comm, &topo), Error);
    EXPECT_THROW(Simulation(deck, &comm, nullptr), Error);
  });
}

}  // namespace
}  // namespace minivpic::sim
