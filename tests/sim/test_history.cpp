#include "sim/history.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "fft/fft.hpp"
#include "util/error.hpp"
#include "vmpi/runtime.hpp"

namespace minivpic::sim {
namespace {

Deck small_deck() {
  Deck d;
  d.grid.nx = 16;
  d.grid.ny = d.grid.nz = 4;
  d.grid.dx = d.grid.dy = d.grid.dz = 0.5;
  SpeciesConfig e;
  e.name = "electron";
  e.q = -1;
  e.m = 1;
  e.load.ppc = 8;
  e.load.uth = 0.1;
  d.species.push_back(e);
  SpeciesConfig ion = e;
  ion.name = "ion";
  ion.q = +1;
  ion.m = 1836;
  ion.mobile = false;
  d.species.push_back(ion);
  return d;
}

TEST(EnergyHistoryTest, RecordsSamples) {
  Simulation sim(small_deck());
  sim.initialize();
  EnergyHistory hist(sim);
  hist.sample();
  for (int s = 0; s < 10; ++s) {
    sim.step();
    hist.sample();
  }
  ASSERT_EQ(hist.size(), 11u);
  EXPECT_DOUBLE_EQ(hist.time()[0], 0.0);
  EXPECT_GT(hist.time()[10], 0.0);
  EXPECT_GT(hist.kinetic_energy()[0], 0.0);
  for (std::size_t n = 0; n < hist.size(); ++n)
    EXPECT_NEAR(hist.total_energy()[n],
                hist.field_energy()[n] + hist.kinetic_energy()[n], 1e-12);
  EXPECT_LT(hist.worst_relative_drift(), 0.05);
  EXPECT_THROW(hist.species_kinetic(5), Error);
  EXPECT_EQ(hist.species_kinetic(1).size(), 11u);
}

TEST(EnergyHistoryTest, TableAndCsv) {
  Simulation sim(small_deck());
  sim.initialize();
  EnergyHistory hist(sim);
  hist.sample();
  sim.step();
  hist.sample();
  const auto table = hist.to_table();
  EXPECT_EQ(table.num_rows(), 2u);
  EXPECT_EQ(table.num_cols(), 6u);  // time, field, kinetic, total + 2 species
  EXPECT_EQ(table.columns()[4], "KE[electron]");
  const std::string path = ::testing::TempDir() + "/minivpic_hist.csv";
  hist.write_csv(path);
  std::ifstream in(path);
  std::string header;
  std::getline(in, header);
  EXPECT_NE(header.find("KE[ion]"), std::string::npos);
  std::remove(path.c_str());
}

TEST(FieldProbeTest, RecordsOwnedPoint) {
  Simulation sim(plasma_oscillation_deck(16, 16, 0.02));
  sim.initialize();
  FieldProbe probe(sim, grid::Component::kEx, 4, 2, 2);
  ASSERT_TRUE(probe.owns_point());
  for (int s = 0; s < 256; ++s) {
    sim.step();
    probe.sample();
  }
  ASSERT_EQ(probe.series().size(), 256u);
  // The probe sees the Langmuir oscillation at omega_pe.
  const auto power = fft::power_spectrum(probe.series());
  const auto peak = fft::peak_bin(power, 1, power.size());
  const double w =
      fft::bin_omega(peak, 2 * (power.size() - 1), sim.local_grid().dt());
  EXPECT_NEAR(w, 1.0, 0.12);
}

TEST(FieldProbeTest, OutOfRangeRejected) {
  Simulation sim(small_deck());
  sim.initialize();
  EXPECT_THROW(FieldProbe(sim, grid::Component::kEy, 0, 1, 1), Error);
  EXPECT_THROW(FieldProbe(sim, grid::Component::kEy, 17, 1, 1), Error);
}

TEST(FieldProbeTest, OwnershipAcrossRanks) {
  const Deck deck = small_deck();
  vmpi::run(2, [&](vmpi::Comm& comm) {
    const vmpi::CartTopology topo({2, 1, 1}, {true, true, true});
    Simulation sim(deck, &comm, &topo);
    sim.initialize();
    FieldProbe probe(sim, grid::Component::kEy, 12, 2, 2);  // rank 1's half
    EXPECT_EQ(probe.owns_point(), comm.rank() == 1);
    sim.step();
    probe.sample();
    EXPECT_EQ(probe.series().size(), comm.rank() == 1 ? 1u : 0u);
  });
}

}  // namespace
}  // namespace minivpic::sim
