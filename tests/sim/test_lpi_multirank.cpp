// The paper's LPI configuration run across a rank decomposition: laser
// injection, absorbing walls, particle absorption, and the collective
// reflectivity probe must all work when the slab is split along the laser
// axis (antenna on rank 0, probe plane on rank 0, plasma mostly on rank 1).
#include <gtest/gtest.h>

#include "sim/diagnostics.hpp"
#include "sim/simulation.hpp"
#include "vmpi/runtime.hpp"

namespace minivpic::sim {
namespace {

Deck lpi_test_deck() {
  Deck d;
  d.grid.nx = 96;
  d.grid.ny = d.grid.nz = 2;
  d.grid.dx = d.grid.dy = d.grid.dz = 0.25;
  d.grid.boundary = grid::lpi_boundaries();
  d.particle_bc = particles::lpi_particles();
  SpeciesConfig e;
  e.name = "electron";
  e.q = -1;
  e.m = 1;
  e.load.ppc = 8;
  e.load.uth = 0.05;
  e.load.profile = [](double x, double, double) {
    return (x >= 8.0 && x < 20.0) ? 1.0 : 0.0;
  };
  d.species.push_back(e);
  SpeciesConfig ion = e;
  ion.name = "ion";
  ion.q = +1;
  ion.m = 1836;
  ion.load.uth = 0.001;
  ion.mobile = false;
  d.species.push_back(ion);
  field::LaserConfig laser;
  laser.omega0 = 3.0;
  laser.a0 = 0.05;
  laser.ramp = 6.0;
  laser.global_plane = 2;
  d.laser = laser;
  return d;
}

TEST(LpiMultiRank, MatchesSingleRankEnergetics) {
  const Deck deck = lpi_test_deck();
  const int steps = 120;

  Simulation solo(deck);
  solo.initialize();
  double solo_refl = 0;
  {
    ReflectivityProbe probe(solo, 28);
    for (int s = 0; s < steps; ++s) {
      solo.step();
      probe.sample(5.0);
    }
    solo_refl = probe.reflectivity();
  }
  const auto ref = solo.energies();

  vmpi::run(2, [&](vmpi::Comm& comm) {
    const vmpi::CartTopology topo({2, 1, 1}, {false, true, true});
    Simulation sim(deck, &comm, &topo);
    sim.initialize();
    ReflectivityProbe probe(sim, 28);
    // Antenna plane (2) and probe plane (28) both live on rank 0's half.
    EXPECT_EQ(probe.owns_plane(), comm.rank() == 0);
    for (int s = 0; s < steps; ++s) {
      sim.step();
      probe.sample(5.0);
    }
    const auto rep = sim.energies();
    // The laser deposits identical energy; fields and kinetics must agree
    // with the single-rank run to float accumulation accuracy.
    EXPECT_NEAR(rep.field.total(), ref.field.total(),
                0.02 * ref.field.total());
    EXPECT_NEAR(rep.kinetic_total, ref.kinetic_total,
                0.02 * ref.kinetic_total);
    // Reflectivity is a global collective: every rank reports the same
    // value, matching the single-rank measurement.
    const double refl = probe.reflectivity();
    EXPECT_NEAR(refl, solo_refl, 0.2 * std::max(solo_refl, 1e-6));
  });
}

TEST(LpiMultiRank, AbsorbedCountsAgree) {
  const Deck deck = lpi_test_deck();
  const int steps = 150;
  Simulation solo(deck);
  solo.initialize();
  solo.run(steps);
  const auto solo_n = solo.global_particle_count();

  vmpi::run(2, [&](vmpi::Comm& comm) {
    const vmpi::CartTopology topo({2, 1, 1}, {false, true, true});
    Simulation sim(deck, &comm, &topo);
    sim.initialize();
    sim.run(steps);
    // Wall losses are physical and must not depend on the decomposition
    // (within the float-level trajectory divergence of a kinetic system).
    const auto n = sim.global_particle_count();
    EXPECT_NEAR(double(n), double(solo_n), 0.01 * double(solo_n) + 50.0);
  });
}

}  // namespace
}  // namespace minivpic::sim
