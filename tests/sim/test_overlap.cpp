// The overlapped step loop's determinism contract (docs/OVERLAP.md): the
// barriered and overlapped schedules run the same two-pass particle
// advance (skin cells, then interior) and the same exchange sequence, so
// at any rank and pipeline count the final fields, particles, and counters
// must be bit-identical — overlap changes only *when* the exchange runs,
// never what it computes. Plus the overlap ledger's accounting identities
// and the capstone: injected faults mid-overlap recover bit-identically.
#include <gtest/gtest.h>

#include <cstring>
#include <mutex>
#include <vector>

#include "particles/particle.hpp"
#include "particles/species.hpp"
#include "sim/deck.hpp"
#include "sim/recovery.hpp"
#include "sim/simulation.hpp"
#include "vmpi/cart.hpp"
#include "vmpi/fault.hpp"
#include "vmpi/runtime.hpp"

namespace minivpic::sim {
namespace {

constexpr int kSteps = 16;

/// Two-stream beams with refluxing x walls: lots of cell crossings, steady
/// inter-rank migration when decomposed along x, and wall refluxes drawing
/// from the per-pipeline RNG streams — every mechanism whose ordering the
/// overlap contract pins down.
Deck overlap_deck(int pipelines, Deck::Overlap overlap) {
  Deck deck = two_stream_deck(/*cells=*/32, /*ppc=*/8);
  deck.pipelines = pipelines;
  deck.overlap = overlap;
  deck.grid.boundary = grid::lpi_boundaries();  // absorbing x field walls
  deck.particle_bc[grid::kFaceXLo] = particles::ParticleBc::kReflux;
  deck.particle_bc[grid::kFaceXHi] = particles::ParticleBc::kReflux;
  return deck;
}

/// Everything that defines one rank's final state, captured bitwise.
struct RankState {
  std::vector<std::vector<grid::real>> fields;  // one vector per component
  std::vector<std::vector<particles::Particle>> species;
  ParticleStats stats;
  std::int64_t step = -1;
};

struct Snapshot {
  std::mutex mu;
  std::vector<RankState> ranks;
  explicit Snapshot(int n = 1) : ranks(std::size_t(n)) {}
};

void capture(Snapshot& snap, Simulation& sim, int rank) {
  RankState st;
  for (const auto c : grid::em_components()) {
    const grid::real* p = grid::component_data(sim.fields(), c);
    st.fields.emplace_back(p, p + sim.fields().grid().num_voxels());
  }
  for (std::size_t s = 0; s < sim.num_species(); ++s) {
    const auto span = sim.species(s).particles();
    st.species.emplace_back(span.begin(), span.end());
  }
  st.stats = sim.particle_stats();
  st.step = sim.step_index();
  std::lock_guard<std::mutex> lock(snap.mu);
  snap.ranks[std::size_t(rank)] = std::move(st);
}

/// `compare_stats` = false when one side rolled back: a recovered world's
/// Simulation restarts its cumulative counters at the restored checkpoint,
/// so only state (fields, particles) is comparable, not the odometers.
void expect_bit_identical(const Snapshot& a, const Snapshot& b,
                          bool compare_stats = true) {
  ASSERT_EQ(a.ranks.size(), b.ranks.size());
  for (std::size_t r = 0; r < a.ranks.size(); ++r) {
    const RankState& x = a.ranks[r];
    const RankState& y = b.ranks[r];
    ASSERT_EQ(x.step, y.step) << "rank " << r;
    // Exact counter parity first: a mismatch here localizes the divergence
    // faster than a raw memcmp of particle bytes.
    if (compare_stats) {
      EXPECT_EQ(x.stats.pushed, y.stats.pushed) << "rank " << r;
      EXPECT_EQ(x.stats.crossings, y.stats.crossings) << "rank " << r;
      EXPECT_EQ(x.stats.migrated, y.stats.migrated) << "rank " << r;
      EXPECT_EQ(x.stats.immigrated, y.stats.immigrated) << "rank " << r;
      EXPECT_EQ(x.stats.absorbed, y.stats.absorbed) << "rank " << r;
      EXPECT_EQ(x.stats.reflected, y.stats.reflected) << "rank " << r;
      EXPECT_EQ(x.stats.refluxed, y.stats.refluxed) << "rank " << r;
    }
    ASSERT_EQ(x.fields.size(), y.fields.size()) << "rank " << r;
    for (std::size_t c = 0; c < x.fields.size(); ++c) {
      ASSERT_EQ(x.fields[c].size(), y.fields[c].size());
      ASSERT_EQ(std::memcmp(x.fields[c].data(), y.fields[c].data(),
                            x.fields[c].size() * sizeof(grid::real)),
                0)
          << "field component " << c << " differs on rank " << r;
    }
    ASSERT_EQ(x.species.size(), y.species.size()) << "rank " << r;
    for (std::size_t s = 0; s < x.species.size(); ++s) {
      ASSERT_EQ(x.species[s].size(), y.species[s].size())
          << "particle count differs, species " << s << " rank " << r;
      ASSERT_EQ(std::memcmp(x.species[s].data(), y.species[s].data(),
                            x.species[s].size() * sizeof(particles::Particle)),
                0)
          << "particles differ, species " << s << " rank " << r;
    }
  }
}

void run_mode(int ranks, int pipelines, Deck::Overlap overlap,
              Snapshot* snap) {
  snap->ranks.resize(std::size_t(ranks));
  const Deck deck = overlap_deck(pipelines, overlap);
  vmpi::run(ranks, [&](vmpi::Comm& comm) {
    const vmpi::CartTopology topo({ranks, 1, 1}, {true, true, true});
    Simulation sim(deck, &comm, &topo);
    sim.initialize();
    sim.run(kSteps);
    capture(*snap, sim, comm.rank());
  });
}

class OverlapBitExact
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(OverlapBitExact, OverlappedMatchesBarriered) {
  const int ranks = std::get<0>(GetParam());
  const int pipelines = std::get<1>(GetParam());
  Snapshot barriered, overlapped;
  run_mode(ranks, pipelines, Deck::Overlap::kOff, &barriered);
  run_mode(ranks, pipelines, Deck::Overlap::kOn, &overlapped);
  expect_bit_identical(barriered, overlapped);
}

INSTANTIATE_TEST_SUITE_P(RankPipelineMatrix, OverlapBitExact,
                         ::testing::Combine(::testing::Values(1, 2, 4),
                                            ::testing::Values(1, 4)),
                         [](const auto& info) {
                           return "ranks" +
                                  std::to_string(std::get<0>(info.param)) +
                                  "_pipes" +
                                  std::to_string(std::get<1>(info.param));
                         });

TEST(Overlap, SingleRankNeverOverlaps) {
  // A single-rank grid has no skin, so kOn resolves to the barriered loop
  // (and the accumulator keeps its exact legacy block count / fold order).
  const Deck deck = overlap_deck(1, Deck::Overlap::kOn);
  Simulation sim(deck);
  EXPECT_FALSE(sim.overlap());
  EXPECT_FALSE(sim.overlap_stats().enabled);
}

TEST(Overlap, AutoResolvesOnForMultiRank) {
  const Deck deck = overlap_deck(1, Deck::Overlap::kAuto);
  vmpi::run(2, [&](vmpi::Comm& comm) {
    const vmpi::CartTopology topo({2, 1, 1}, {true, true, true});
    Simulation sim(deck, &comm, &topo);
    EXPECT_TRUE(sim.overlap());
  });
  vmpi::run(2, [&](vmpi::Comm& comm) {
    Deck off = deck;
    off.overlap = Deck::Overlap::kOff;
    const vmpi::CartTopology topo({2, 1, 1}, {true, true, true});
    Simulation sim(off, &comm, &topo);
    EXPECT_FALSE(sim.overlap());
  });
}

TEST(Overlap, LedgerBalancesAndMigrationCountsMatch) {
  constexpr int kRanks = 4;
  const Deck deck = overlap_deck(/*pipelines=*/2, Deck::Overlap::kOn);
  std::mutex mu;
  std::vector<OverlapStats> ov(kRanks);
  std::vector<ParticleStats> stats(kRanks);
  vmpi::run(kRanks, [&](vmpi::Comm& comm) {
    const vmpi::CartTopology topo({kRanks, 1, 1}, {true, true, true});
    Simulation sim(deck, &comm, &topo);
    sim.initialize();
    sim.run(kSteps);
    std::lock_guard<std::mutex> lock(mu);
    ov[std::size_t(comm.rank())] = sim.overlap_stats();
    stats[std::size_t(comm.rank())] = sim.particle_stats();
  });
  std::int64_t sent = 0, received = 0;
  for (int r = 0; r < kRanks; ++r) {
    const OverlapStats& o = ov[std::size_t(r)];
    EXPECT_TRUE(o.enabled);
    // Every step overlaps the mobile species' advances (two beams).
    EXPECT_EQ(o.overlapped_steps, 2 * kSteps) << "rank " << r;
    EXPECT_GT(o.skin_seconds, 0.0) << "rank " << r;
    EXPECT_GT(o.interior_seconds, 0.0) << "rank " << r;
    EXPECT_GT(o.comm_seconds, 0.0) << "rank " << r;
    // hidden + exposed partitions the async exchange's wall time; each
    // piece is clamped non-negative, so the sum cannot exceed comm by more
    // than clock jitter.
    EXPECT_GE(o.hidden_seconds, 0.0);
    EXPECT_GE(o.exposed_seconds, 0.0);
    EXPECT_LE(o.hidden_seconds, o.comm_seconds + 1e-9) << "rank " << r;
    sent += stats[std::size_t(r)].migrated;
    received += stats[std::size_t(r)].immigrated;
  }
  // Conservation across the rank set: every emigrant shipped settles as
  // exactly one immigrant somewhere (the stats-balance contract the
  // telemetry migrate metrics rely on).
  EXPECT_GT(sent, 0);
  EXPECT_EQ(sent, received);
}

TEST(Overlap, ChaosMidOverlapRecoversBitIdentically) {
  // A rank killed and a payload corrupted while the overlapped loop is in
  // flight: the recovery coordinator must roll back and finish with the
  // same bits as a fault-free overlapped run — and that run itself matches
  // the barriered schedule (transitively, via OverlappedMatchesBarriered).
  // Periodic particle walls, like the main chaos soak: reflux draws advance
  // a sequential RNG counter that checkpoints do not (yet) capture, so
  // rollback replay is bitwise only for reflux-free decks — a pre-existing
  // checkpoint-scope limit, independent of the overlap scheduler.
  constexpr int kRanks = 4;
  Deck deck = two_stream_deck(/*cells=*/32, /*ppc=*/8);
  deck.pipelines = 2;
  deck.overlap = Deck::Overlap::kOn;

  Snapshot clean_snap(kRanks);
  RecoveryConfig clean_rc;
  clean_rc.ranks = kRanks;
  clean_rc.checkpoint_prefix =
      ::testing::TempDir() + "/minivpic_overlap_clean.ckpt";
  clean_rc.checkpoint_every = 6;
  clean_rc.comm_timeout = 60;
  clean_rc.integrity = true;
  clean_rc.on_final = [&](Simulation& sim, vmpi::Comm& comm) {
    capture(clean_snap, sim, comm.rank());
  };
  RecoveryCoordinator clean(deck, clean_rc);
  ASSERT_TRUE(clean.run(kSteps).completed);

  vmpi::FaultPlane plane;
  plane.corrupt_message(/*rank=*/1, /*step=*/8, /*bit=*/3);
  plane.kill_rank(/*rank=*/2, /*step=*/13);
  Snapshot fault_snap(kRanks);
  RecoveryConfig rc;
  rc.ranks = kRanks;
  rc.checkpoint_prefix =
      ::testing::TempDir() + "/minivpic_overlap_chaos.ckpt";
  rc.checkpoint_every = 6;
  rc.comm_timeout = 60;
  rc.integrity = true;
  rc.fault_plane = &plane;
  rc.on_final = [&](Simulation& sim, vmpi::Comm& comm) {
    capture(fault_snap, sim, comm.rank());
  };
  RecoveryCoordinator chaos(deck, rc);
  const RecoveryReport rep = chaos.run(kSteps);
  ASSERT_TRUE(rep.completed) << rep.last_fault;
  EXPECT_EQ(rep.rollbacks, 2);
  EXPECT_EQ(plane.injected().corrupted, 1);
  EXPECT_EQ(plane.injected().killed, 1);

  expect_bit_identical(clean_snap, fault_snap, /*compare_stats=*/false);
}

}  // namespace
}  // namespace minivpic::sim
