#include "sim/diagnostics.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace minivpic::sim {
using minivpic::Rng;
namespace {

/// LPI-style deck with configurable plasma density (0 = vacuum) and laser
/// frequency, small enough for unit tests.
Deck mini_laser_deck(double density, double omega0, double a0 = 0.02) {
  Deck d;
  d.grid.nx = 96;
  d.grid.ny = d.grid.nz = 2;
  d.grid.dx = d.grid.dy = d.grid.dz = 0.25;
  d.grid.boundary = grid::lpi_boundaries();
  d.particle_bc = particles::lpi_particles();

  SpeciesConfig e;
  e.name = "electron";
  e.q = -1;
  e.m = 1;
  e.load.ppc = 16;
  e.load.uth = 0.03;
  e.load.profile = [density](double x, double, double) {
    return (x >= 8.0 && x < 20.0) ? density : 0.0;
  };
  d.species.push_back(e);
  SpeciesConfig ion = e;
  ion.name = "ion";
  ion.q = +1;
  ion.m = 1836;
  ion.load.uth = 0.001;
  ion.mobile = false;
  d.species.push_back(ion);

  field::LaserConfig laser;
  laser.omega0 = omega0;
  laser.a0 = a0;
  laser.ramp = 6.0;
  laser.global_plane = 2;
  d.laser = laser;
  return d;
}

TEST(ReflectivityTest, VacuumIsTransparent) {
  Simulation sim(mini_laser_deck(0.0, 3.0));
  sim.initialize();
  ReflectivityProbe probe(sim, 16);
  while (sim.time() < 50.0) {
    sim.step();
    probe.sample(/*warmup_time=*/20.0);
  }
  EXPECT_GT(probe.forward_power(), 0.0);
  EXPECT_LT(probe.reflectivity(), 0.02);
  EXPECT_TRUE(probe.owns_plane());
  EXPECT_FALSE(probe.backward_series().empty());
}

TEST(ReflectivityTest, OverdensePlasmaMirrors) {
  // omega0 < omega_pe: the light cannot propagate and is almost completely
  // reflected off the plasma surface.
  Simulation sim(mini_laser_deck(1.0, 0.6));
  sim.initialize();
  ReflectivityProbe probe(sim, 16);
  while (sim.time() < 60.0) {
    sim.step();
    probe.sample(/*warmup_time=*/25.0);
  }
  EXPECT_GT(probe.reflectivity(), 0.5);
}

TEST(ReflectivityTest, UnderdenseTransmitsMostly) {
  // omega0 = 3 omega_pe (n/n_c = 1/9): propagating, low linear reflection.
  Simulation sim(mini_laser_deck(1.0, 3.0));
  sim.initialize();
  ReflectivityProbe probe(sim, 16);
  while (sim.time() < 60.0) {
    sim.step();
    probe.sample(/*warmup_time=*/25.0);
  }
  EXPECT_LT(probe.reflectivity(), 0.25);
  EXPECT_GT(probe.forward_power(), 0.0);
}

TEST(ReflectivityTest, PlaneValidation) {
  Simulation sim(mini_laser_deck(0.0, 3.0));
  sim.initialize();
  EXPECT_THROW(ReflectivityProbe(sim, 0), Error);
  EXPECT_THROW(ReflectivityProbe(sim, 97), Error);
}

TEST(SpectrumTest, BinsAndFractions) {
  Deck d = mini_laser_deck(0.0, 3.0);
  Simulation sim(d);
  sim.initialize();
  particles::Species sp("test", -1.0, 1.0);
  auto with_energy = [&](double e_over_mc2, float w) {
    particles::Particle p;
    const double gamma = 1.0 + e_over_mc2;
    p.ux = float(std::sqrt(gamma * gamma - 1.0));
    p.w = w;
    p.i = sim.local_grid().voxel(2, 1, 1);
    sp.add(p);
  };
  with_energy(0.05, 1.0f);
  with_energy(0.15, 2.0f);
  with_energy(0.35, 1.0f);
  ParticleSpectrum spec(0.0, 0.4, 4);
  spec.build(sim, sp);
  EXPECT_DOUBLE_EQ(spec.count(0), 1.0);
  EXPECT_DOUBLE_EQ(spec.count(1), 2.0);
  EXPECT_DOUBLE_EQ(spec.count(3), 1.0);
  EXPECT_NEAR(spec.fraction_above(0.1), 3.0 / 4.0, 1e-12);
  EXPECT_NEAR(spec.fraction_above(0.3), 1.0 / 4.0, 1e-12);
  EXPECT_NEAR(spec.bin_center(0), 0.05, 1e-12);
}

TEST(SpectrumTest, LogBinning) {
  ParticleSpectrum spec(1e-3, 1.0, 3, /*log_bins=*/true);
  // Bin centers geometrically spaced.
  EXPECT_NEAR(spec.bin_center(1) / spec.bin_center(0), 10.0, 1e-9);
  EXPECT_THROW(ParticleSpectrum(0.0, 1.0, 4, true), Error);
  EXPECT_THROW(ParticleSpectrum(1.0, 1.0, 4), Error);
  EXPECT_THROW(ParticleSpectrum(0.0, 1.0, 0), Error);
}

TEST(SpectrumTest, MaxwellianShape) {
  // A thermal species' spectrum should peak at low energy and fall off.
  Deck d = mini_laser_deck(0.0, 3.0);
  Simulation sim(d);
  sim.initialize();
  particles::Species sp("maxwell", -1.0, 1.0);
  Rng rng(5);
  for (int n = 0; n < 20000; ++n) {
    particles::Particle p;
    p.ux = float(rng.maxwellian(0.1));
    p.uy = float(rng.maxwellian(0.1));
    p.uz = float(rng.maxwellian(0.1));
    p.w = 1.0f;
    p.i = sim.local_grid().voxel(2, 1, 1);
    sp.add(p);
  }
  ParticleSpectrum spec(0.0, 0.2, 40);
  spec.build(sim, sp);
  // Mean kinetic energy ~ (3/2) uth^2 = 0.015; nearly nothing above 10x.
  EXPECT_LT(spec.fraction_above(0.1), 1e-3);
  EXPECT_GT(spec.fraction_above(0.001), 0.5);
}

}  // namespace
}  // namespace minivpic::sim
