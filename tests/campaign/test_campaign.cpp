// Campaign subsystem proof: spec expansion with stable content-hashed job
// ids, the retry/backoff and timeout/checkpoint/resume state machine, the
// crash-safe NDJSON result ledger with resume-skip, and curve aggregation
// matching a hand-rolled serial reference. The capstone: a job sliced into
// wall-time slivers (checkpoint + resume after every step) must end
// bit-identical to an uninterrupted run of the same deck.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <fstream>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/executor.hpp"
#include "campaign/queue.hpp"
#include "campaign/results.hpp"
#include "campaign/spec.hpp"
#include "grid/halo.hpp"
#include "sim/simulation.hpp"
#include "telemetry/metrics.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "vmpi/comm.hpp"
#include "vmpi/error.hpp"

namespace minivpic::campaign {
namespace {

// A deliberately tiny base deck so executor tests run in milliseconds.
const char* kBaseDeck = R"(
[grid]
nx = 12  ny = 2  nz = 2  dx = 0.5

[species electron]
q = -1  m = 1  ppc = 4  uth = 0.05  seed = 7

[species ion]
q = 1  m = 1836  ppc = 4  uth = 0.001  mobile = false
)";

std::string campaign_deck_text() {
  return std::string(kBaseDeck) +
         "\n[campaign]\n"
         "species electron.uth = 0.05, 0.07\n"
         "grid.nx = 12, 16\n"
         "steps = 4\n";
}

std::string temp_path(const char* tag) {
  return ::testing::TempDir() + "/minivpic_campaign_" + tag;
}

std::vector<std::string> ids_of(const std::vector<Job>& jobs) {
  std::vector<std::string> ids;
  for (const Job& j : jobs) ids.push_back(j.id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

/// Quiet the expected retry warnings so fault-drill tests don't spam.
struct LogSilencer {
  LogLevel prev = log_level();
  LogSilencer() { set_log_level(LogLevel::kError); }
  ~LogSilencer() { set_log_level(prev); }
};

// -- spec expansion and job ids ----------------------------------------------

TEST(CampaignSpec, ExpandsCartesianProductWithControls) {
  CampaignSpec spec = CampaignSpec::from_deck_text(campaign_deck_text());
  ASSERT_EQ(spec.axes().size(), 2u);
  EXPECT_EQ(spec.steps(), 4);
  const std::vector<Job> jobs = spec.expand();
  ASSERT_EQ(jobs.size(), 4u);
  // First axis slowest; labels carry every override.
  EXPECT_EQ(jobs[0].label, "species electron.uth=0.05,grid.nx=12");
  EXPECT_EQ(jobs[3].label, "species electron.uth=0.07,grid.nx=16");
  for (const Job& j : jobs) {
    EXPECT_EQ(j.id.size(), 16u);
    EXPECT_EQ(j.steps, 4);
    const sim::Deck d = spec.make_deck(j);
    EXPECT_EQ(d.species[0].load.uth,
              std::stod(j.overrides[0].value));
  }
  // All ids distinct.
  const auto ids = ids_of(jobs);
  EXPECT_EQ(std::set<std::string>(ids.begin(), ids.end()).size(), 4u);
}

TEST(CampaignSpec, IdsStableAcrossAxisReorderButNotValueChange) {
  sim::DeckSource base = sim::DeckSource::from_text(kBaseDeck);
  CampaignSpec a = CampaignSpec::from_deck_source(base);
  a.add_axis("species electron.uth", {"0.05", "0.07"});
  a.add_axis("grid.nx", {"12", "16"});
  CampaignSpec b = CampaignSpec::from_deck_source(base);
  b.add_axis("grid.nx", {"12", "16"});
  b.add_axis("species electron.uth", {"0.05", "0.07"});
  EXPECT_EQ(ids_of(a.expand()), ids_of(b.expand()));

  // A changed axis value, step count, or base deck changes the ids.
  CampaignSpec c = CampaignSpec::from_deck_source(base);
  c.add_axis("species electron.uth", {"0.05", "0.08"});
  c.add_axis("grid.nx", {"12", "16"});
  EXPECT_NE(ids_of(a.expand()), ids_of(c.expand()));
  CampaignSpec d = CampaignSpec::from_deck_source(base);
  d.add_axis("species electron.uth", {"0.05", "0.07"});
  d.add_axis("grid.nx", {"12", "16"});
  d.set_steps(11);
  EXPECT_NE(ids_of(a.expand()), ids_of(d.expand()));
}

TEST(CampaignSpec, UnknownOverrideKeyRejectedAtExpand) {
  sim::DeckSource base = sim::DeckSource::from_text(kBaseDeck);
  CampaignSpec spec = CampaignSpec::from_deck_source(base);
  spec.add_axis("grid.bogus_key", {"1", "2"});
  EXPECT_THROW(spec.expand(), Error);
}

TEST(CampaignSpec, UnknownControlKeyRejected) {
  EXPECT_THROW(CampaignSpec::from_deck_text(std::string(kBaseDeck) +
                                            "\n[campaign]\nfrobnicate = 3\n"),
               Error);
}

TEST(CampaignSpec, FactoryBaseSweepsProgrammaticDecks) {
  CampaignSpec spec = CampaignSpec::with_factory(
      "two_stream|v1", [](const std::vector<sim::DeckOverride>& overrides) {
        double drift = 0.2;
        for (const sim::DeckOverride& ov : overrides)
          if (ov.key == "drift_x") drift = std::stod(ov.value);
        return sim::two_stream_deck(8, 4, drift);
      });
  spec.add_axis("species beam.drift_x", {"0.1", "0.2"});
  spec.set_steps(2);
  const std::vector<Job> jobs = spec.expand();
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_NE(jobs[0].id, jobs[1].id);
  const sim::Deck d = spec.make_deck(jobs[0]);
  EXPECT_DOUBLE_EQ(d.species[0].load.drift[0], 0.1);
}

// -- job queue state machine --------------------------------------------------

TEST(JobQueue, RetriesWithBackoffUntilBudgetThenFails) {
  Job job;
  job.id = "j1";
  job.label = "the job";
  RetryPolicy policy;
  policy.max_attempts = 2;
  policy.backoff_seconds = 0.01;
  JobQueue queue({job}, policy);

  auto lease = queue.acquire();
  ASSERT_TRUE(lease.has_value());
  EXPECT_EQ(lease->attempt, 1);
  EXPECT_TRUE(queue.fail("j1", "first crash"));  // retry granted

  lease = queue.acquire();  // blocks through the backoff gate
  ASSERT_TRUE(lease.has_value());
  EXPECT_EQ(lease->attempt, 2);
  EXPECT_LT(lease->resume_step, 0);  // failures restart from scratch
  EXPECT_FALSE(queue.fail("j1", "second crash"));  // budget exhausted

  EXPECT_FALSE(queue.acquire().has_value());  // everything terminal
  const JobQueue::Counts c = queue.counts();
  EXPECT_EQ(c.failed, 1);
  EXPECT_EQ(c.retries, 1);
  const auto status = queue.snapshot();
  ASSERT_EQ(status.size(), 1u);
  EXPECT_EQ(status[0].state, JobState::kFailed);
  EXPECT_EQ(status[0].last_error, "second crash");
}

TEST(JobQueue, YieldResumeCarriesCheckpointAndHonorsBudget) {
  Job job;
  job.id = "j1";
  RetryPolicy policy;
  policy.max_resumes = 1;
  JobQueue queue({job}, policy);

  auto lease = queue.acquire();
  ASSERT_TRUE(lease.has_value());
  EXPECT_TRUE(queue.yield_resume("j1", "/tmp/ck", 5));

  lease = queue.acquire();
  ASSERT_TRUE(lease.has_value());
  EXPECT_EQ(lease->attempt, 1);  // a resume is not a retry
  EXPECT_EQ(lease->resumes, 1);
  EXPECT_EQ(lease->resume_step, 5);
  EXPECT_EQ(lease->resume_prefix, "/tmp/ck");

  EXPECT_FALSE(queue.yield_resume("j1", "/tmp/ck", 6));  // budget exhausted
  EXPECT_FALSE(queue.acquire().has_value());
  const auto status = queue.snapshot();
  EXPECT_EQ(status[0].state, JobState::kFailed);
  EXPECT_NE(status[0].last_error.find("resume budget"), std::string::npos);
}

TEST(JobQueue, DuplicateIdsRejected) {
  Job a, b;
  a.id = b.id = "same";
  EXPECT_THROW(JobQueue({a, b}, RetryPolicy{}), Error);
}

// -- executor ----------------------------------------------------------------

TEST(CampaignExecutor, ThreadBudgetClampsWorkers) {
  CampaignSpec spec = CampaignSpec::from_deck_text(campaign_deck_text());
  ExecutorConfig config;
  config.workers = 8;
  config.max_threads = 2;
  EXPECT_EQ(CampaignExecutor(spec, config).effective_workers(), 2);
  config.workers = 4;
  config.ranks_per_job = 2;
  config.pipelines_per_job = 2;
  config.max_threads = 8;
  EXPECT_EQ(CampaignExecutor(spec, config).effective_workers(), 2);
}

TEST(CampaignExecutor, InjectedFaultsRetryToDoneAndCountersTrack) {
  CampaignSpec spec = CampaignSpec::from_deck_text(campaign_deck_text());
  const std::vector<Job> jobs = spec.expand();
  const std::string victim = jobs[1].id;

  ExecutorConfig config;
  config.retry.max_attempts = 3;
  config.retry.backoff_seconds = 0.001;
  config.scratch_dir = ::testing::TempDir();
  telemetry::MetricsRegistry registry;
  config.metrics = &registry;
  std::atomic<int> faults{0};
  config.per_step_hook = [&](sim::Simulation& sim, const Job& job,
                             int attempt) {
    if (job.id == victim && attempt <= 2 && sim.step_index() <= 1) {
      faults.fetch_add(1);
      MV_REQUIRE(false, "injected fault");
    }
  };

  ResultStore store(temp_path("retry.ndjson"), /*resume=*/false);
  LogSilencer quiet;
  const CampaignSummary summary = CampaignExecutor(spec, config).run(store);
  EXPECT_TRUE(summary.all_done());
  EXPECT_EQ(summary.done, 4);
  EXPECT_EQ(summary.retries, 2);
  EXPECT_EQ(faults.load(), 2);
  EXPECT_EQ(registry.counter("campaign.jobs.done").value(), 4.0);
  EXPECT_EQ(registry.counter("campaign.retries").value(), 2.0);
  EXPECT_EQ(registry.gauge("campaign.queue.depth").value(), 0.0);

  // The ledger records the attempt count of the flaky job.
  for (const JobResult& r : ResultStore::read_all(store.path())) {
    EXPECT_EQ(r.status, "done");
    EXPECT_EQ(r.attempts, r.id == victim ? 3 : 1);
  }
}

TEST(CampaignExecutor, ExhaustedRetriesRecordFailure) {
  CampaignSpec spec = CampaignSpec::from_deck_text(campaign_deck_text());
  ExecutorConfig config;
  config.retry.max_attempts = 2;
  config.retry.backoff_seconds = 0.001;
  config.scratch_dir = ::testing::TempDir();
  config.per_step_hook = [&](sim::Simulation&, const Job&, int) {
    MV_REQUIRE(false, "always crashes");
  };
  ResultStore store(temp_path("exhaust.ndjson"), /*resume=*/false);
  LogSilencer quiet;
  const CampaignSummary summary = CampaignExecutor(spec, config).run(store);
  EXPECT_FALSE(summary.all_done());
  EXPECT_EQ(summary.failed, 4);
  const auto results = ResultStore::read_all(store.path());
  ASSERT_EQ(results.size(), 4u);
  for (const JobResult& r : results) {
    EXPECT_EQ(r.status, "failed");
    EXPECT_EQ(r.attempts, 2);
    EXPECT_NE(r.error.find("always crashes"), std::string::npos);
  }
}

TEST(CampaignExecutor, TimeoutSlicedRunMatchesUninterruptedBitForBit) {
  // One job, wall budget so small every attempt yields after one step:
  // the job only finishes through the checkpoint -> resume path.
  sim::DeckSource base = sim::DeckSource::from_text(kBaseDeck);
  CampaignSpec spec = CampaignSpec::from_deck_source(base);
  spec.add_axis("species electron.uth", {"0.06"});
  spec.set_steps(8);

  ExecutorConfig config;
  config.retry.timeout_seconds = 1e-6;
  config.retry.max_resumes = 64;
  config.scratch_dir = ::testing::TempDir();

  struct Captured {
    std::mutex mu;
    std::vector<std::vector<grid::real>> fields;
    double energy = 0;
    std::int64_t particles = 0;
    std::int64_t step = 0;
  } captured;
  config.on_complete = [&captured](sim::Simulation& sim, const Job&,
                                   const sim::ReflectivityProbe*,
                                   JobResult* result) {
    if (result == nullptr) return;
    std::lock_guard<std::mutex> lock(captured.mu);
    for (const auto c : grid::em_components()) {
      const grid::real* p = grid::component_data(sim.fields(), c);
      captured.fields.emplace_back(p, p + sim.fields().grid().num_voxels());
    }
    captured.energy = sim.energies().total;
    captured.particles = sim.global_particle_count();
    captured.step = sim.step_index();
  };

  ResultStore store(temp_path("slice.ndjson"), /*resume=*/false);
  const CampaignSummary summary = CampaignExecutor(spec, config).run(store);
  ASSERT_TRUE(summary.all_done());
  EXPECT_GT(summary.resumes, 0) << "timeout path never exercised";
  EXPECT_EQ(captured.step, 8);

  // Uninterrupted reference of the same job deck.
  const std::vector<Job> jobs = spec.expand();
  sim::Simulation ref(spec.make_deck(jobs[0]));
  ref.initialize();
  ref.run(8);
  EXPECT_DOUBLE_EQ(ref.energies().total, captured.energy);
  EXPECT_EQ(ref.global_particle_count(), captured.particles);
  const auto components = grid::em_components();
  ASSERT_EQ(captured.fields.size(), components.size());
  for (std::size_t ci = 0; ci < components.size(); ++ci) {
    const grid::real* p = grid::component_data(ref.fields(), components[ci]);
    for (std::int64_t v = 0; v < ref.fields().grid().num_voxels(); ++v)
      ASSERT_EQ(p[v], captured.fields[ci][std::size_t(v)])
          << "field mismatch, component " << ci << " voxel " << v;
  }

  // The ledger shows how the job actually got there.
  const auto results = ResultStore::read_all(store.path());
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].resumes, summary.resumes);
  EXPECT_EQ(results[0].steps, 8);
}

TEST(CampaignExecutor, MultiRankJobsComplete) {
  sim::DeckSource base = sim::DeckSource::from_text(kBaseDeck);
  CampaignSpec spec = CampaignSpec::from_deck_source(base);
  spec.add_axis("species electron.uth", {"0.05", "0.07"});
  spec.set_steps(3);
  ExecutorConfig config;
  config.ranks_per_job = 2;
  config.max_threads = 2;
  config.scratch_dir = ::testing::TempDir();
  ResultStore store(temp_path("multirank.ndjson"), /*resume=*/false);
  const CampaignSummary summary = CampaignExecutor(spec, config).run(store);
  EXPECT_TRUE(summary.all_done());
  for (const JobResult& r : ResultStore::read_all(store.path())) {
    EXPECT_EQ(r.status, "done");
    EXPECT_EQ(r.particles, 12 * 2 * 2 * 4 * 2);  // voxels x ppc x species
  }
}

TEST(CampaignExecutor, CommTimeoutFailsJobWithTypedReason) {
  // Rank 0 receives on a tag nobody ever sends; with a comm deadline the
  // world dies with a typed timeout instead of hanging the worker, and the
  // ledger records the fault class.
  sim::DeckSource base = sim::DeckSource::from_text(kBaseDeck);
  CampaignSpec spec = CampaignSpec::from_deck_source(base);
  spec.add_axis("species electron.uth", {"0.05"});
  spec.set_steps(3);

  ExecutorConfig config;
  config.ranks_per_job = 2;
  config.max_threads = 2;
  config.retry.max_attempts = 1;
  config.comm_timeout_seconds = 0.25;
  config.scratch_dir = ::testing::TempDir();
  telemetry::MetricsRegistry registry;
  config.metrics = &registry;
  config.per_step_hook = [](sim::Simulation& sim, const Job&, int) {
    if (sim.step_index() == 1 && sim.comm() != nullptr &&
        sim.comm()->rank() == 0) {
      (void)sim.comm()->recv_value<int>(1, /*tag=*/77);  // never sent
    }
  };

  ResultStore store(temp_path("commtimeout.ndjson"), /*resume=*/false);
  LogSilencer quiet;
  const CampaignSummary summary = CampaignExecutor(spec, config).run(store);
  EXPECT_EQ(summary.failed, 1);
  const auto results = ResultStore::read_all(store.path());
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status, "failed");
  EXPECT_NE(results[0].error.find("comm fault [timeout]"), std::string::npos)
      << results[0].error;
  EXPECT_EQ(registry.counter("campaign.failures").value(), 1.0);
}

TEST(CampaignExecutor, CommFaultTakesRetryPathAndCountsFailures) {
  sim::DeckSource base = sim::DeckSource::from_text(kBaseDeck);
  CampaignSpec spec = CampaignSpec::from_deck_source(base);
  spec.add_axis("species electron.uth", {"0.05"});
  spec.set_steps(3);

  ExecutorConfig config;
  config.ranks_per_job = 2;
  config.max_threads = 2;
  config.retry.max_attempts = 2;
  config.retry.backoff_seconds = 0.001;
  config.scratch_dir = ::testing::TempDir();
  telemetry::MetricsRegistry registry;
  config.metrics = &registry;
  config.per_step_hook = [](sim::Simulation& sim, const Job&, int attempt) {
    if (attempt == 1 && sim.comm() != nullptr && sim.comm()->rank() == 1)
      throw vmpi::CommError(vmpi::Fault::kLost, "synthetic link loss");
  };

  ResultStore store(temp_path("commretry.ndjson"), /*resume=*/false);
  LogSilencer quiet;
  const CampaignSummary summary = CampaignExecutor(spec, config).run(store);
  EXPECT_TRUE(summary.all_done());
  EXPECT_EQ(summary.retries, 1);
  EXPECT_EQ(registry.counter("campaign.failures").value(), 1.0);
  const auto results = ResultStore::read_all(store.path());
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status, "done");
  EXPECT_EQ(results[0].attempts, 2);
}

TEST(CampaignExecutor, DeadWorldLedgerCarriesFailingRankRootCause) {
  // One rank of a two-rank job throws; the peer is released by the poison.
  // The ledger must carry the actual root cause, not a generic message.
  sim::DeckSource base = sim::DeckSource::from_text(kBaseDeck);
  CampaignSpec spec = CampaignSpec::from_deck_source(base);
  spec.add_axis("species electron.uth", {"0.05"});
  spec.set_steps(3);

  ExecutorConfig config;
  config.ranks_per_job = 2;
  config.max_threads = 2;
  config.retry.max_attempts = 1;
  config.scratch_dir = ::testing::TempDir();
  config.per_step_hook = [](sim::Simulation& sim, const Job&, int) {
    if (sim.comm() != nullptr && sim.comm()->rank() == 1)
      MV_REQUIRE(false, "disk on fire");
  };

  ResultStore store(temp_path("rootcause.ndjson"), /*resume=*/false);
  LogSilencer quiet;
  const CampaignSummary summary = CampaignExecutor(spec, config).run(store);
  EXPECT_EQ(summary.failed, 1);
  const auto results = ResultStore::read_all(store.path());
  ASSERT_EQ(results.size(), 1u);
  EXPECT_NE(results[0].error.find("disk on fire"), std::string::npos)
      << results[0].error;
}

TEST(CampaignExecutor, ResumedCampaignSkipsLedgeredJobs) {
  CampaignSpec spec = CampaignSpec::from_deck_text(campaign_deck_text());
  const std::vector<Job> jobs = spec.expand();
  const std::string path = temp_path("skip.ndjson");
  {
    ResultStore first(path, /*resume=*/false);
    JobResult done;
    done.id = jobs[0].id;
    done.label = jobs[0].label;
    done.status = "done";
    first.append(done);
    JobResult failed;  // failed records must NOT be skipped on resume
    failed.id = jobs[1].id;
    failed.status = "failed";
    failed.error = "earlier crash";
    first.append(failed);
  }
  ResultStore store(path, /*resume=*/true);
  EXPECT_EQ(store.completed_ids().size(), 1u);
  ExecutorConfig config;
  config.scratch_dir = ::testing::TempDir();
  const CampaignSummary summary = CampaignExecutor(spec, config).run(store);
  EXPECT_TRUE(summary.all_done());
  EXPECT_EQ(summary.skipped, 1);
  EXPECT_EQ(summary.done, 3);

  // Re-read: the previously-failed job now has a done record too.
  int done_records = 0;
  for (const JobResult& r : ResultStore::read_all(path))
    if (r.id == jobs[1].id && r.status == "done") ++done_records;
  EXPECT_EQ(done_records, 1);
}

// -- result store ------------------------------------------------------------

TEST(ResultStore, RoundTripsEveryField) {
  JobResult r;
  r.id = "00ff00ff00ff00ff";
  r.label = "laser.a0=0.1";
  r.overrides.push_back(sim::parse_override("laser.a0=0.1"));
  r.status = "done";
  r.attempts = 2;
  r.resumes = 3;
  r.steps = 40;
  r.seconds = 1.25;
  r.reflectivity = 0.125;
  r.energy_total = 2.5;
  r.kinetic_total = 1.5;
  r.particles = 9216;
  r.particles_per_sec = 1.5e7;
  r.extra.emplace_back("hot_fraction", 0.03125);

  const std::string path = temp_path("roundtrip.ndjson");
  {
    ResultStore store(path, /*resume=*/false);
    store.append(r);
  }
  const auto back = ResultStore::read_all(path);
  ASSERT_EQ(back.size(), 1u);
  const JobResult& b = back[0];
  EXPECT_EQ(b.id, r.id);
  EXPECT_EQ(b.label, r.label);
  ASSERT_EQ(b.overrides.size(), 1u);
  EXPECT_EQ(b.overrides[0].spec(), "laser.a0=0.1");
  EXPECT_EQ(b.attempts, 2);
  EXPECT_EQ(b.resumes, 3);
  EXPECT_EQ(b.steps, 40);
  EXPECT_DOUBLE_EQ(b.seconds, 1.25);
  EXPECT_DOUBLE_EQ(b.reflectivity, 0.125);
  EXPECT_DOUBLE_EQ(b.energy_total, 2.5);
  EXPECT_EQ(b.particles, 9216);
  ASSERT_EQ(b.extra.size(), 1u);
  EXPECT_EQ(b.extra[0].first, "hot_fraction");
  EXPECT_DOUBLE_EQ(b.extra[0].second, 0.03125);
}

TEST(ResultStore, ToleratesOnlyATrailingPartialLine) {
  JobResult r;
  r.id = "aaaaaaaaaaaaaaaa";
  r.status = "done";
  const std::string path = temp_path("partial.ndjson");
  {
    ResultStore store(path, /*resume=*/false);
    store.append(r);
    r.id = "bbbbbbbbbbbbbbbb";
    store.append(r);
  }
  // A crash mid-append leaves a partial trailing line: dropped with a warn.
  {
    std::ofstream out(path, std::ios::app);
    out << "{\"type\":\"job_result\",\"schema\":1,\"id\":\"cccc";
  }
  LogSilencer quiet;
  EXPECT_EQ(ResultStore::read_all(path).size(), 2u);
  ResultStore resumed(path, /*resume=*/true);
  EXPECT_EQ(resumed.completed_ids().size(), 2u);

  // Corruption anywhere else is a hard error.
  const std::string bad = temp_path("midcorrupt.ndjson");
  {
    ResultStore store(bad, /*resume=*/false);
    store.append(r);
  }
  std::string good_line;
  {
    std::ifstream in(bad);
    std::getline(in, good_line);
  }
  {
    std::ofstream out(bad, std::ios::trunc);
    out << "not json at all\n" << good_line << "\n";
  }
  EXPECT_THROW(ResultStore::read_all(bad), Error);
}

// -- curve aggregation --------------------------------------------------------

std::vector<JobResult> curve_fixture() {
  std::vector<JobResult> results;
  const double a0s[] = {0.05, 0.10, 0.10, 0.20};
  const double refl[] = {0.01, 0.10, 0.14, 0.30};
  for (int i = 0; i < 4; ++i) {
    JobResult r;
    r.id = "job" + std::to_string(i);
    std::ostringstream v;
    v << a0s[i];
    r.overrides.push_back(sim::parse_override("laser.a0=" + v.str()));
    r.status = "done";
    r.reflectivity = refl[i];
    r.extra.emplace_back("hot_fraction", refl[i] / 10);
    results.push_back(r);
  }
  JobResult failed;  // failed jobs never contribute points
  failed.id = "failed";
  failed.overrides.push_back(sim::parse_override("laser.a0=0.40"));
  failed.status = "failed";
  results.push_back(failed);
  return results;
}

TEST(AggregateCurve, MatchesHandRolledSerialReference) {
  const std::vector<JobResult> results = curve_fixture();
  const std::vector<CurvePoint> curve =
      aggregate_curve(results, "laser.a0", "reflectivity");
  ASSERT_EQ(curve.size(), 3u);  // 0.05, 0.10 (two jobs), 0.20

  // Serial reference, computed the obvious way.
  EXPECT_DOUBLE_EQ(curve[0].x, 0.05);
  EXPECT_DOUBLE_EQ(curve[0].mean, 0.01);
  EXPECT_EQ(curve[0].n, 1);
  EXPECT_DOUBLE_EQ(curve[1].x, 0.10);
  EXPECT_DOUBLE_EQ(curve[1].mean, (0.10 + 0.14) / 2.0);
  EXPECT_DOUBLE_EQ(curve[1].min, 0.10);
  EXPECT_DOUBLE_EQ(curve[1].max, 0.14);
  EXPECT_EQ(curve[1].n, 2);
  EXPECT_DOUBLE_EQ(curve[2].x, 0.20);
  EXPECT_DOUBLE_EQ(curve[2].mean, 0.30);

  // Extra metrics aggregate the same way.
  const auto hot = aggregate_curve(results, "laser.a0", "hot_fraction");
  ASSERT_EQ(hot.size(), 3u);
  EXPECT_DOUBLE_EQ(hot[1].mean, (0.010 + 0.014) / 2.0);
}

TEST(AggregateCurve, CsvAndJsonOutputs) {
  const auto curve = aggregate_curve(curve_fixture(), "laser.a0");
  const std::string path = temp_path("curve.csv");
  write_curve_csv(path, "laser.a0", "reflectivity", curve);
  std::ifstream in(path);
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header,
            "laser.a0,reflectivity_mean,reflectivity_min,reflectivity_max,"
            "jobs");
  int rows = 0;
  for (std::string line; std::getline(in, line);) ++rows;
  EXPECT_EQ(rows, 3);

  const telemetry::Json j = curve_to_json("laser.a0", "reflectivity", curve);
  EXPECT_EQ(j.at("axis").as_string(), "laser.a0");
  EXPECT_EQ(j.at("points").size(), 3u);
}

}  // namespace
}  // namespace minivpic::campaign
