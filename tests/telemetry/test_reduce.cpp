#include "telemetry/reduce.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "vmpi/runtime.hpp"

namespace minivpic::telemetry {
namespace {

std::vector<ScalarMetric> rank_metrics(int rank) {
  // Distinct per-rank values so min/mean/max/sum are all different.
  return {
      {"a", "s", double(rank + 1)},
      {"b", "count", 10.0 * rank},
      {"c", "ratio", 1.0},  // identical on every rank
  };
}

TEST(RankReducerTest, NullCommIsDegenerate) {
  RankReducer red(nullptr);
  EXPECT_EQ(red.ranks(), 1);
  EXPECT_TRUE(red.root());
  const auto out = red.reduce(rank_metrics(3));
  ASSERT_EQ(out.size(), 3u);
  for (const auto& m : out) {
    EXPECT_DOUBLE_EQ(m.stats.min, m.stats.mean);
    EXPECT_DOUBLE_EQ(m.stats.mean, m.stats.max);
    EXPECT_DOUBLE_EQ(m.stats.sum, m.stats.max);
  }
  EXPECT_EQ(out[0].name, "a");
  EXPECT_EQ(out[0].unit, "s");
  EXPECT_DOUBLE_EQ(out[0].stats.mean, 4.0);
}

TEST(RankReducerTest, MultiRankStatistics) {
  for (const int n : {2, 4, 7}) {
    vmpi::run(n, [&](vmpi::Comm& comm) {
      RankReducer red(&comm);
      EXPECT_EQ(red.ranks(), n);
      EXPECT_EQ(red.root(), comm.rank() == 0);
      const auto out = red.reduce(rank_metrics(comm.rank()));
      ASSERT_EQ(out.size(), 3u);

      // metric "a": rank r contributes r + 1.
      EXPECT_DOUBLE_EQ(out[0].stats.min, 1.0);
      EXPECT_DOUBLE_EQ(out[0].stats.max, double(n));
      EXPECT_DOUBLE_EQ(out[0].stats.sum, double(n) * (n + 1) / 2.0);
      EXPECT_DOUBLE_EQ(out[0].stats.mean, (n + 1) / 2.0);

      // metric "c" is identical everywhere: fully degenerate stats except
      // the sum, which counts ranks.
      EXPECT_DOUBLE_EQ(out[2].stats.min, 1.0);
      EXPECT_DOUBLE_EQ(out[2].stats.mean, 1.0);
      EXPECT_DOUBLE_EQ(out[2].stats.max, 1.0);
      EXPECT_DOUBLE_EQ(out[2].stats.sum, double(n));
    });
  }
}

TEST(RankReducerTest, OrderingInvariantHolds) {
  // min <= mean <= max and sum == mean * n, for arbitrary per-rank values.
  const int n = 5;
  vmpi::run(n, [&](vmpi::Comm& comm) {
    const double v = double((comm.rank() * 7919) % 13) - 6.0;
    RankReducer red(&comm);
    const auto out = red.reduce({{"x", "", v}});
    ASSERT_EQ(out.size(), 1u);
    EXPECT_LE(out[0].stats.min, out[0].stats.mean);
    EXPECT_LE(out[0].stats.mean, out[0].stats.max);
    EXPECT_NEAR(out[0].stats.sum, out[0].stats.mean * n,
                1e-12 * std::abs(out[0].stats.sum));
  });
}

TEST(RankReducerTest, AllRanksReceiveTheSameResult) {
  const int n = 3;
  std::vector<double> means(n, 0.0);
  vmpi::run(n, [&](vmpi::Comm& comm) {
    RankReducer red(&comm);
    const auto out = red.reduce({{"x", "", double(comm.rank())}});
    means[std::size_t(comm.rank())] = out[0].stats.mean;
  });
  EXPECT_DOUBLE_EQ(means[0], means[1]);
  EXPECT_DOUBLE_EQ(means[1], means[2]);
}

}  // namespace
}  // namespace minivpic::telemetry
