#include "telemetry/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace minivpic::telemetry {
namespace {

TEST(JsonTest, KindsAndAccessors) {
  EXPECT_TRUE(Json::null().is_null());
  EXPECT_TRUE(Json::boolean(true).as_bool());
  EXPECT_DOUBLE_EQ(Json::number(2.5).as_number(), 2.5);
  EXPECT_EQ(Json::string("hi").as_string(), "hi");
  EXPECT_TRUE(Json::array().is_array());
  EXPECT_TRUE(Json::object().is_object());
  EXPECT_THROW(Json::number(1.0).as_string(), Error);
  EXPECT_THROW(Json::string("x").as_number(), Error);
}

TEST(JsonTest, ObjectPreservesInsertionOrder) {
  Json o = Json::object();
  o.set("zulu", Json::number(std::int64_t{1}));
  o.set("alpha", Json::number(std::int64_t{2}));
  o.set("mike", Json::number(std::int64_t{3}));
  EXPECT_EQ(o.dump(), R"({"zulu":1,"alpha":2,"mike":3})");
  // Re-setting replaces in place, keeping the original position.
  o.set("alpha", Json::number(std::int64_t{9}));
  EXPECT_EQ(o.dump(), R"({"zulu":1,"alpha":9,"mike":3})");
}

TEST(JsonTest, ObjectLookup) {
  Json o = Json::object();
  o.set("k", Json::string("v"));
  EXPECT_NE(o.find("k"), nullptr);
  EXPECT_EQ(o.find("missing"), nullptr);
  EXPECT_EQ(o.at("k").as_string(), "v");
  EXPECT_THROW(o.at("missing"), Error);
}

TEST(JsonTest, IntegersDumpWithoutExponent) {
  EXPECT_EQ(Json::number(std::int64_t{0}).dump(), "0");
  EXPECT_EQ(Json::number(std::int64_t{-7}).dump(), "-7");
  EXPECT_EQ(Json::number(1048576.0).dump(), "1048576");
}

TEST(JsonTest, NumbersRoundTripThroughDump) {
  const double values[] = {0.0,    1.0 / 3.0, 6.02214076e23, -2.5e-300,
                           0.1,    1e-9,      123456.789,    -0.0,
                           3.14159265358979};
  for (const double v : values) {
    const Json parsed = Json::parse(Json::number(v).dump());
    EXPECT_EQ(parsed.as_number(), v) << "value " << v;
  }
}

TEST(JsonTest, NonFiniteNumbersThrowOnDump) {
  EXPECT_THROW(Json::number(std::numeric_limits<double>::infinity()).dump(),
               Error);
  EXPECT_THROW(Json::number(std::nan("")).dump(), Error);
}

TEST(JsonTest, StringEscaping) {
  EXPECT_EQ(Json::string("a\"b\\c\n\t").dump(), R"("a\"b\\c\n\t")");
  EXPECT_EQ(Json::escape(std::string("\x01", 1)), "\\u0001");
}

TEST(JsonTest, ParseRoundTrip) {
  const std::string text =
      R"({"s":"he\"llo","n":-1.5,"b":true,"z":null,"a":[1,2,[3]],"o":{"k":"v"}})";
  const Json j = Json::parse(text);
  EXPECT_EQ(j.at("s").as_string(), "he\"llo");
  EXPECT_DOUBLE_EQ(j.at("n").as_number(), -1.5);
  EXPECT_TRUE(j.at("b").as_bool());
  EXPECT_TRUE(j.at("z").is_null());
  EXPECT_EQ(j.at("a").size(), 3u);
  EXPECT_DOUBLE_EQ(j.at("a").at(2).at(0).as_number(), 3.0);
  // dump() of a parse() is stable (fixed point after one cycle).
  EXPECT_EQ(Json::parse(j.dump()).dump(), j.dump());
}

TEST(JsonTest, ParseUnicodeEscapes) {
  EXPECT_EQ(Json::parse(R"("A")").as_string(), "A");
  // Surrogate pair: U+1F600 in UTF-8.
  EXPECT_EQ(Json::parse(R"("😀")").as_string(), "\xF0\x9F\x98\x80");
}

TEST(JsonTest, ParseRejectsMalformedInput) {
  EXPECT_THROW(Json::parse(""), Error);
  EXPECT_THROW(Json::parse("{"), Error);
  EXPECT_THROW(Json::parse("[1,]"), Error);
  EXPECT_THROW(Json::parse("{\"a\":1,}"), Error);
  EXPECT_THROW(Json::parse("nul"), Error);
  EXPECT_THROW(Json::parse("1 2"), Error);  // trailing garbage
  EXPECT_THROW(Json::parse("\"unterminated"), Error);
  EXPECT_THROW(Json::parse("{'a':1}"), Error);
}

TEST(JsonTest, ParseAcceptsWhitespace) {
  const Json j = Json::parse(" { \"a\" : [ 1 , 2 ] } ");
  EXPECT_EQ(j.at("a").size(), 2u);
}

}  // namespace
}  // namespace minivpic::telemetry
