// Online anomaly detector contract (telemetry/anomaly.hpp): EWMA + MAD
// baselines flag step-rate regressions and comm-latency spikes within one
// degraded sample, per-rank medians flag an injected straggler immediately,
// and healthy noise stays quiet.
#include "telemetry/anomaly.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "telemetry/metrics.hpp"
#include "telemetry/reduce.hpp"

using namespace minivpic::telemetry;

namespace {

ReducedMetric metric(const char* name, double value) {
  return {name, "", {value, value, value, value}};
}

/// Feeds `n` warmup samples alternating value*(1 +/- jitter) so the MAD
/// window holds a realistic nonzero spread.
void warm_up(AnomalyDetector* det, const char* name, double value,
             double jitter, int n, std::int64_t* step) {
  for (int i = 0; i < n; ++i) {
    const double v = value * (1 + (i % 2 == 0 ? jitter : -jitter));
    const auto out = det->observe((*step)++, {metric(name, v)});
    ASSERT_TRUE(out.empty()) << "warmup sample flagged";
  }
}

TEST(AnomalyDetector, FlagsStepRateRegressionOnFirstDegradedSample) {
  AnomalyDetector det;
  std::int64_t step = 0;
  warm_up(&det, "push.rate", 100e6, 0.01, 10, &step);

  // A 50% drop must be flagged within K = 1 samples.
  const auto out = det.observe(step, {metric("push.rate", 50e6)});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].kind, AnomalyKind::kStepRateRegression);
  EXPECT_EQ(out[0].step, step);
  EXPECT_EQ(out[0].metric, "push.rate");
  EXPECT_DOUBLE_EQ(out[0].value, 50e6);
  EXPECT_GT(out[0].baseline, 90e6);
}

TEST(AnomalyDetector, SustainedRegressionKeepsFlagging) {
  AnomalyDetector det;
  std::int64_t step = 0;
  warm_up(&det, "push.rate", 100e6, 0.01, 10, &step);
  // The baseline freezes while anomalous, so a regression that persists
  // never becomes the new normal.
  for (int i = 0; i < 5; ++i) {
    const auto out = det.observe(step++, {metric("push.rate", 50e6)});
    ASSERT_EQ(out.size(), 1u) << "regression sample " << i << " not flagged";
    EXPECT_EQ(out[0].kind, AnomalyKind::kStepRateRegression);
  }
  EXPECT_EQ(det.total_flagged(), 5);
}

TEST(AnomalyDetector, RateImprovementIsNotAnAnomaly) {
  AnomalyDetector det;
  std::int64_t step = 0;
  warm_up(&det, "push.rate", 100e6, 0.01, 10, &step);
  const auto out = det.observe(step, {metric("push.rate", 200e6)});
  EXPECT_TRUE(out.empty());  // regressions are drops; speedups pass
}

TEST(AnomalyDetector, FlagsCommLatencySpike) {
  AnomalyDetector det;
  std::int64_t step = 0;
  warm_up(&det, "phase.migrate.s", 0.010, 0.05, 10, &step);
  const auto out = det.observe(step, {metric("phase.migrate.s", 0.100)});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].kind, AnomalyKind::kCommLatencySpike);
  EXPECT_EQ(out[0].metric, "phase.migrate.s");
}

TEST(AnomalyDetector, FlagsInjectedStragglerRankImmediately) {
  AnomalyDetector det;
  // Synthetic 4-rank trace: rank 2 takes 3x the busy seconds of its peers
  // from the very first sample — flagged within K = 1 samples, no warmup
  // needed (the cross-rank median is its own baseline).
  const std::vector<double> busy = {1.0, 1.0, 3.0, 1.0};
  const auto out = det.observe(0, {}, /*rank_particles=*/{}, busy);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].kind, AnomalyKind::kStraggler);
  EXPECT_EQ(out[0].rank, 2);
  EXPECT_EQ(out[0].metric, "pipeline.busy.s");
  EXPECT_DOUBLE_EQ(out[0].value, 3.0);
  EXPECT_DOUBLE_EQ(out[0].baseline, 1.0);
}

TEST(AnomalyDetector, FlagsParticleImbalanceStraggler) {
  AnomalyDetector det;
  const std::vector<double> particles = {1e6, 1e6, 1e6, 2e6};
  const auto out = det.observe(0, {}, particles, /*rank_busy=*/{});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].kind, AnomalyKind::kStraggler);
  EXPECT_EQ(out[0].rank, 3);
  EXPECT_EQ(out[0].metric, "particles.local");
}

TEST(AnomalyDetector, BalancedRanksStayQuiet) {
  AnomalyDetector det;
  // 1% jitter across ranks is normal load spread, not a straggler: the
  // min_relative gate keeps tiny-MAD noise from flagging.
  const std::vector<double> busy = {1.00, 1.01, 0.99, 1.00};
  for (int s = 0; s < 20; ++s)
    EXPECT_TRUE(det.observe(s, {}, {}, busy).empty());
  EXPECT_EQ(det.total_flagged(), 0);
}

TEST(AnomalyDetector, FewerThanThreeRanksCannotStraggle) {
  AnomalyDetector det;
  EXPECT_TRUE(det.observe(0, {}, {}, {1.0, 100.0}).empty());
}

TEST(AnomalyDetector, PublishBumpsCountersAndKeepsRank) {
  AnomalyDetector det;
  const auto out = det.observe(0, {}, {}, {1.0, 1.0, 3.0, 1.0});
  ASSERT_EQ(out.size(), 1u);
  MetricsRegistry registry;
  det.publish(out, &registry, /*trace=*/nullptr);
  double total = -1, straggler = -1;
  for (const ScalarMetric& m : registry.scalars()) {
    if (m.name == "anomaly.total") total = m.value;
    if (m.name == "anomaly.straggler") straggler = m.value;
  }
  EXPECT_DOUBLE_EQ(total, 1.0);
  EXPECT_DOUBLE_EQ(straggler, 1.0);
}

}  // namespace
