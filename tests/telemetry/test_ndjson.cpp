#include "telemetry/ndjson.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <string>
#include <vector>

#include "telemetry/reduce.hpp"
#include "telemetry/sampler.hpp"
#include "util/error.hpp"

namespace minivpic::telemetry {
namespace {

std::string temp_path(const char* tag) {
  return ::testing::TempDir() + "/minivpic_ndjson_" + tag + ".ndjson";
}

std::vector<ReducedMetric> reduced_fixture() {
  return {
      {"phase.push.s", "s", {0.1, 0.2, 0.3, 0.6}},
      {"push.rate", "1/s", {1e6, 2e6, 3e6, 6e6}},
  };
}

StepSample sample_fixture() {
  StepSample s;
  s.step_begin = 10;
  s.step_end = 20;
  s.sim_time = 1.25;
  s.wall_seconds = 0.5;
  return s;
}

TEST(NdjsonTest, WriterThrowsOnBadPath) {
  EXPECT_THROW(NdjsonWriter("/nonexistent-dir/x.ndjson"), Error);
}

TEST(NdjsonTest, MetaRecordCarriesSchemaAndUnits) {
  Json extra = Json::object();
  extra.set("deck", Json::string("two_stream.deck"));
  const Json meta = meta_record(4, 8, "avx2", reduced_fixture(), extra);
  EXPECT_EQ(meta.at("type").as_string(), "meta");
  EXPECT_DOUBLE_EQ(meta.at("schema").as_number(),
                   double(kNdjsonSchemaVersion));
  EXPECT_DOUBLE_EQ(meta.at("ranks").as_number(), 4.0);
  EXPECT_DOUBLE_EQ(meta.at("pipelines").as_number(), 8.0);
  EXPECT_EQ(meta.at("kernel").as_string(), "avx2");
  EXPECT_EQ(meta.at("units").at("phase.push.s").as_string(), "s");
  EXPECT_EQ(meta.at("units").at("push.rate").as_string(), "1/s");
  EXPECT_EQ(meta.at("deck").as_string(), "two_stream.deck");
}

TEST(NdjsonTest, SampleRecordCarriesReducedStats) {
  const Json rec = sample_record(sample_fixture(), reduced_fixture());
  EXPECT_EQ(rec.at("type").as_string(), "step_sample");
  EXPECT_DOUBLE_EQ(rec.at("step").as_number(), 20.0);
  EXPECT_DOUBLE_EQ(rec.at("step_begin").as_number(), 10.0);
  EXPECT_DOUBLE_EQ(rec.at("t").as_number(), 1.25);
  const Json& m = rec.at("metrics").at("push.rate");
  EXPECT_DOUBLE_EQ(m.at("min").as_number(), 1e6);
  EXPECT_DOUBLE_EQ(m.at("mean").as_number(), 2e6);
  EXPECT_DOUBLE_EQ(m.at("max").as_number(), 3e6);
  EXPECT_DOUBLE_EQ(m.at("sum").as_number(), 6e6);
}

TEST(NdjsonTest, StreamRoundTripsLineByLine) {
  const std::string path = temp_path("roundtrip");
  {
    NdjsonWriter w(path);
    w.write(meta_record(1, 2, "scalar", reduced_fixture()));
    for (int i = 0; i < 3; ++i) {
      StepSample s = sample_fixture();
      s.step_end = 20 + i;
      w.write(sample_record(s, reduced_fixture()));
    }
    EXPECT_EQ(w.records_written(), 4);
  }

  std::ifstream is(path);
  ASSERT_TRUE(is.good());
  std::string line;
  int lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    ASSERT_FALSE(line.empty()) << "line " << lineno;
    const Json rec = Json::parse(line);  // throws on malformed output
    EXPECT_EQ(rec.at("type").as_string(),
              lineno == 1 ? "meta" : "step_sample");
    if (lineno > 1) {
      EXPECT_DOUBLE_EQ(rec.at("step").as_number(), double(20 + lineno - 2));
    }
  }
  EXPECT_EQ(lineno, 4);
}

TEST(NdjsonTest, TruncatesPreviousStream) {
  const std::string path = temp_path("truncate");
  { NdjsonWriter w(path); w.write(meta_record(1, 1, "sse", reduced_fixture())); }
  { NdjsonWriter w(path); w.write(meta_record(1, 1, "sse", reduced_fixture())); }
  std::ifstream is(path);
  std::string line;
  int lines = 0;
  while (std::getline(is, line)) ++lines;
  EXPECT_EQ(lines, 1);  // second run starts a fresh stream
}

}  // namespace
}  // namespace minivpic::telemetry
