#include "telemetry/sampler.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "perf/costs.hpp"
#include "sim/simulation.hpp"

namespace minivpic::telemetry {
namespace {

sim::Deck small_deck() {
  sim::Deck d;
  d.grid.nx = d.grid.ny = d.grid.nz = 6;
  d.grid.dx = d.grid.dy = d.grid.dz = 0.5;
  sim::SpeciesConfig e;
  e.name = "electron";
  e.q = -1;
  e.m = 1;
  e.load.ppc = 4;
  e.load.uth = 0.1;
  d.species.push_back(e);
  return d;
}

TEST(StepSamplerTest, SharedDerivationsAreTheCanonicalFormulas) {
  EXPECT_DOUBLE_EQ(StepSampler::particles_per_second(1000, 0.5), 2000.0);
  EXPECT_DOUBLE_EQ(StepSampler::particles_per_second(1000, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(
      StepSampler::push_gflops(1000000, 1.0),
      1e6 * perf::KernelCosts::push_flops_per_particle() / 1e9);
  EXPECT_DOUBLE_EQ(StepSampler::push_gflops(5, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(StepSampler::push_gbytes_per_second(0, 4.0, 1.0), 0.0);
  EXPECT_GT(StepSampler::push_gbytes_per_second(1000000, 4.0, 1.0), 0.0);
}

TEST(StepSamplerTest, DeriveTotalMatchesSimulationCounters) {
  sim::Simulation sim(small_deck());
  sim.initialize();
  sim.run(4);
  const StepSample total = StepSampler::derive_total(sim, 1.0);

  EXPECT_EQ(total.step_begin, 0);
  EXPECT_EQ(total.step_end, 4);
  EXPECT_DOUBLE_EQ(total.sim_time, sim.time());
  EXPECT_EQ(total.pushed, sim.particle_stats().pushed);
  EXPECT_EQ(total.particles_local,
            std::int64_t(sim.species(0).particles().size()));
  // 4 steps of one mobile species: every resident particle advanced each
  // step (this deck neither absorbs nor injects).
  EXPECT_EQ(total.pushed, 4 * total.particles_local);

  ASSERT_EQ(total.phase_seconds.size(), 9u);
  const char* expected[] = {"interpolate", "push",  "migrate",
                            "sort",        "reduce", "sources",
                            "field",       "clean",  "collide"};
  double phase_sum = 0;
  for (std::size_t i = 0; i < 9; ++i) {
    EXPECT_EQ(total.phase_seconds[i].first, expected[i]);
    EXPECT_GE(total.phase_seconds[i].second, 0.0);
    phase_sum += total.phase_seconds[i].second;
  }
  EXPECT_DOUBLE_EQ(total.step_seconds, phase_sum);
  EXPECT_DOUBLE_EQ(total.step_seconds, sim.timings().total_seconds());

  // Rates agree with the shared formulas by construction.
  EXPECT_DOUBLE_EQ(
      total.particles_per_sec,
      StepSampler::particles_per_second(total.pushed, total.push_seconds));
  EXPECT_DOUBLE_EQ(total.push_gflops, StepSampler::push_gflops(
                                          total.pushed, total.push_seconds));
  EXPECT_GE(total.pipeline_imbalance, 1.0);
  EXPECT_GT(total.pipeline_occupancy, 0.0);
  EXPECT_LE(total.pipeline_occupancy, 1.0);
}

TEST(StepSamplerTest, SamplesCoverDisjointIntervals) {
  sim::Simulation sim(small_deck());
  sim.initialize();
  StepSampler sampler(sim);

  sim.run(2);
  const StepSample s1 = sampler.sample(0.5);
  EXPECT_EQ(s1.step_begin, 0);
  EXPECT_EQ(s1.step_end, 2);
  EXPECT_DOUBLE_EQ(s1.wall_seconds, 0.5);

  sim.run(3);
  const StepSample s2 = sampler.sample(0.25);
  EXPECT_EQ(s2.step_begin, 2);
  EXPECT_EQ(s2.step_end, 5);

  // Interval metrics are deltas of cumulative counters: the two samples
  // plus nothing else must add up to the whole-run totals.
  const StepSample total = StepSampler::derive_total(sim, 0.75);
  EXPECT_EQ(s1.pushed + s2.pushed, total.pushed);
  EXPECT_EQ(s1.crossings + s2.crossings, total.crossings);
  for (std::size_t i = 0; i < 9; ++i) {
    EXPECT_NEAR(s1.phase_seconds[i].second + s2.phase_seconds[i].second,
                total.phase_seconds[i].second, 1e-12);
  }

  // An empty interval is well-defined: zero counts, zero rates.
  const StepSample s3 = sampler.sample(0.1);
  EXPECT_EQ(s3.step_begin, 5);
  EXPECT_EQ(s3.step_end, 5);
  EXPECT_EQ(s3.pushed, 0);
  EXPECT_DOUBLE_EQ(s3.particles_per_sec, 0.0);
}

TEST(StepSamplerTest, ScalarsFollowTheCatalogue) {
  sim::Simulation sim(small_deck());
  sim.initialize();
  sim.run(1);
  const StepSample total = StepSampler::derive_total(sim, 0.5);
  const std::vector<ScalarMetric> scalars = total.scalars();

  auto value_of = [&](const std::string& name) -> const ScalarMetric* {
    for (const auto& m : scalars)
      if (m.name == name) return &m;
    return nullptr;
  };
  for (const char* name :
       {"phase.push.s", "step.s", "wall.s", "steps", "particles.pushed",
        "push.rate", "push.gflops", "push.gbytes_per_s", "field.gflops",
        "step.gflops", "pipeline.count", "pipeline.imbalance",
        "pipeline.occupancy"}) {
    EXPECT_NE(value_of(name), nullptr) << name;
  }
  EXPECT_EQ(value_of("push.rate")->unit, "1/s");
  EXPECT_EQ(value_of("push.gflops")->unit, "Gflop/s");
  EXPECT_DOUBLE_EQ(value_of("steps")->value, 1.0);
  EXPECT_DOUBLE_EQ(value_of("wall.s")->value, 0.5);
  EXPECT_DOUBLE_EQ(value_of("particles.pushed")->value,
                   double(total.pushed));

  // The flattened order is deterministic and identical across calls — the
  // property RankReducer's collective reduce() relies on.
  const std::vector<ScalarMetric> again = total.scalars();
  ASSERT_EQ(scalars.size(), again.size());
  for (std::size_t i = 0; i < scalars.size(); ++i)
    EXPECT_EQ(scalars[i].name, again[i].name);
}

}  // namespace
}  // namespace minivpic::telemetry
