// Flight-recorder contract (telemetry/recorder.hpp): the ring keeps the
// *last* moments, the on-disk dump round-trips exactly, and the dump path
// really is async-signal-safe — proven by crashing a forked child inside a
// signal handler and reading the file it left behind.
#include "telemetry/recorder.hpp"

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <string>

#include "util/error.hpp"
#include "vmpi/config.hpp"

using namespace minivpic;
using namespace minivpic::telemetry;

namespace {

std::string tmp_path(const std::string& name) {
  return testing::TempDir() + "fdr_" + name + ".fdr";
}

TEST(Recorder, RoundTripPreservesEveryField) {
  const std::string path = tmp_path("roundtrip");
  Recorder rec(path, /*rank=*/3, /*capacity=*/16);
  rec.set_step(42);
  rec.record(FdrKind::kStep, 0, -1, 42);
  rec.record(FdrKind::kCommSend, 0, /*peer=*/1, /*arg=*/4096);
  rec.record(FdrKind::kCommFault, /*code=*/2, /*peer=*/5);
  rec.record(FdrKind::kCheckpoint, 0, -1, 40);
  ASSERT_TRUE(rec.dump(FdrDumpReason::kManual));

  const Recorder::Dump d = Recorder::read(path);
  EXPECT_EQ(d.header.version, 1u);
  EXPECT_EQ(d.header.rank, 3);
  EXPECT_EQ(d.header.capacity, 16u);
  EXPECT_EQ(d.header.event_size, sizeof(FdrEvent));
  EXPECT_EQ(FdrDumpReason(d.header.reason), FdrDumpReason::kManual);
  // dump() records its own kDump marker, so 4 + 1 events round-trip.
  ASSERT_EQ(d.events.size(), 5u);
  EXPECT_EQ(d.header.total, 5u);
  EXPECT_EQ(d.header.stored, 5u);

  EXPECT_EQ(FdrKind(d.events[0].kind), FdrKind::kStep);
  EXPECT_EQ(d.events[0].step, 42);
  EXPECT_EQ(d.events[0].arg, 42u);
  EXPECT_EQ(FdrKind(d.events[1].kind), FdrKind::kCommSend);
  EXPECT_EQ(d.events[1].peer, 1);
  EXPECT_EQ(d.events[1].arg, 4096u);
  EXPECT_EQ(FdrKind(d.events[2].kind), FdrKind::kCommFault);
  EXPECT_EQ(d.events[2].code, 2);
  EXPECT_EQ(d.events[2].peer, 5);
  EXPECT_EQ(FdrKind(d.events[3].kind), FdrKind::kCheckpoint);
  EXPECT_EQ(FdrKind(d.events[4].kind), FdrKind::kDump);
  std::remove(path.c_str());
}

TEST(Recorder, WrapAroundKeepsTheNewestEvents) {
  const std::string path = tmp_path("wrap");
  Recorder rec(path, 0, /*capacity=*/8);
  for (int i = 0; i < 20; ++i)
    rec.record(FdrKind::kStep, 0, -1, std::uint64_t(i));
  ASSERT_TRUE(rec.dump());

  const Recorder::Dump d = Recorder::read(path);
  // 20 steps + the dump marker; the ring keeps the last 8.
  EXPECT_EQ(d.header.total, 21u);
  ASSERT_EQ(d.events.size(), 8u);
  EXPECT_EQ(d.header.stored, 8u);
  // Oldest first: steps 13..19, then the dump marker.
  for (int i = 0; i < 7; ++i) {
    EXPECT_EQ(FdrKind(d.events[std::size_t(i)].kind), FdrKind::kStep);
    EXPECT_EQ(d.events[std::size_t(i)].arg, std::uint64_t(13 + i));
  }
  EXPECT_EQ(FdrKind(d.events[7].kind), FdrKind::kDump);
  // Timestamps never run backwards within one recorder.
  for (std::size_t i = 1; i < d.events.size(); ++i)
    EXPECT_GE(d.events[i].ts_ns, d.events[i - 1].ts_ns);
  std::remove(path.c_str());
}

TEST(Recorder, CapacityRoundsUpToAPowerOfTwo) {
  const std::string path = tmp_path("pow2");
  Recorder rec(path, 0, 5);
  EXPECT_EQ(rec.capacity(), 8u);
}

TEST(Recorder, ReadRejectsNonFdrFiles) {
  const std::string path = testing::TempDir() + "not_a_dump.fdr";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("definitely not a flight record", f);
    std::fclose(f);
  }
  EXPECT_THROW(Recorder::read(path), Error);
  std::remove(path.c_str());
}

TEST(RecordedPhase, NullRecorderIsANoOp) {
  RecordedPhase span(nullptr, kFdrPhasePush);  // must not crash
}

TEST(RecordedPhase, RecordsBalancedBeginEnd) {
  const std::string path = tmp_path("phase");
  Recorder rec(path, 0, 16);
  {
    RecordedPhase step(&rec, kFdrPhaseStep);
    RecordedPhase push(&rec, kFdrPhasePush);
  }
  ASSERT_TRUE(rec.dump());
  const Recorder::Dump d = Recorder::read(path);
  ASSERT_EQ(d.events.size(), 5u);  // 2 begins + 2 ends + dump marker
  EXPECT_EQ(FdrKind(d.events[0].kind), FdrKind::kPhaseBegin);
  EXPECT_EQ(d.events[0].code, kFdrPhaseStep);
  EXPECT_EQ(FdrKind(d.events[1].kind), FdrKind::kPhaseBegin);
  EXPECT_EQ(d.events[1].code, kFdrPhasePush);
  EXPECT_EQ(FdrKind(d.events[2].kind), FdrKind::kPhaseEnd);
  EXPECT_EQ(d.events[2].code, kFdrPhasePush);
  EXPECT_EQ(FdrKind(d.events[3].kind), FdrKind::kPhaseEnd);
  EXPECT_EQ(d.events[3].code, kFdrPhaseStep);
  std::remove(path.c_str());
}

TEST(Recorder, CommHookRoutesEventsToTheRanksRecorder) {
  const std::string p0 = tmp_path("hook0"), p1 = tmp_path("hook1");
  Recorder r0(p0, 0, 16), r1(p1, 1, 16);
  Recorder* recorders[] = {&r0, &r1};
  RecorderSet set{recorders, 2};
  vmpi_comm_hook(&set, /*rank=*/1, vmpi::kCommHookSend, /*peer=*/0, 0, 128);
  vmpi_comm_hook(&set, /*rank=*/1, vmpi::kCommHookRecv, /*peer=*/0, 0, 64);
  vmpi_comm_hook(&set, /*rank=*/0, vmpi::kCommHookFault, /*peer=*/1,
                 /*detail=*/3, 0);
  vmpi_comm_hook(&set, /*rank=*/7, vmpi::kCommHookSend, 0, 0, 1);  // ignored

  EXPECT_EQ(r1.total_recorded(), 2u);
  EXPECT_EQ(r0.total_recorded(), 1u);
  ASSERT_TRUE(r1.dump());
  ASSERT_TRUE(r0.dump());
  const Recorder::Dump d1 = Recorder::read(p1);
  EXPECT_EQ(FdrKind(d1.events[0].kind), FdrKind::kCommSend);
  EXPECT_EQ(d1.events[0].peer, 0);
  EXPECT_EQ(d1.events[0].arg, 128u);
  EXPECT_EQ(FdrKind(d1.events[1].kind), FdrKind::kCommRecv);
  const Recorder::Dump d0 = Recorder::read(p0);
  EXPECT_EQ(FdrKind(d0.events[0].kind), FdrKind::kCommFault);
  EXPECT_EQ(d0.events[0].code, 3);
  EXPECT_EQ(d0.events[0].peer, 1);
  std::remove(p0.c_str());
  std::remove(p1.c_str());
}

TEST(Recorder, DumpRegisteredCoversLiveRecorders) {
  const std::string p0 = tmp_path("reg0"), p1 = tmp_path("reg1");
  Recorder r0(p0, 0, 16), r1(p1, 1, 16);
  r0.record(FdrKind::kStep);
  r1.record(FdrKind::kStep);
  EXPECT_GE(dump_registered(FdrDumpReason::kManual), 2);
  EXPECT_EQ(FdrDumpReason(Recorder::read(p0).header.reason),
            FdrDumpReason::kManual);
  EXPECT_EQ(FdrDumpReason(Recorder::read(p1).header.reason),
            FdrDumpReason::kManual);
  std::remove(p0.c_str());
  std::remove(p1.c_str());
}

// The acceptance criterion behind "always-on at <= 1% overhead": one
// record() is a relaxed fetch_add plus a 32-byte store. The bound here is
// deliberately loose (1 us/event vs the ~10 ns measured) so CI noise can
// never flake it, while still catching an accidental lock, allocation, or
// I/O sneaking onto the hot path.
TEST(Recorder, RecordStaysAllocationFreeFast) {
  const std::string path = tmp_path("overhead");
  Recorder rec(path, 0, 4096);
  constexpr int kEvents = 1'000'000;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kEvents; ++i)
    rec.record(FdrKind::kStep, 0, -1, std::uint64_t(i));
  const auto t1 = std::chrono::steady_clock::now();
  const double ns_per_event =
      double(std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                 .count()) /
      kEvents;
  EXPECT_EQ(rec.total_recorded(), std::uint64_t(kEvents));
  EXPECT_LT(ns_per_event, 1000.0) << "record() is no longer cheap enough "
                                     "to stay always-on";
}

// The black box must survive the crash it exists for: a forked child
// installs the crash handlers, records, and dies on SIGSEGV; the parent
// then reads the dump the handler wrote. The child's exit status proves
// the handler re-raised the default disposition after dumping.
TEST(Recorder, SignalHandlerDumpsFromACrashingProcess) {
  const std::string path = tmp_path("crash");
  std::remove(path.c_str());
  const pid_t pid = fork();
  ASSERT_GE(pid, 0) << "fork failed";
  if (pid == 0) {
    // Child: everything from here on must not touch gtest state.
    Recorder rec(path, 0, 64);
    install_crash_handlers();
    rec.set_step(7);
    rec.record(FdrKind::kStep, 0, -1, 7);
    rec.record(FdrKind::kHealth, 1, -1, 7);
    std::raise(SIGSEGV);
    _exit(99);  // unreachable: the handler re-raises with SIG_DFL
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status)) << "child exited instead of crashing";
  EXPECT_EQ(WTERMSIG(status), SIGSEGV);

  const Recorder::Dump d = Recorder::read(path);
  EXPECT_EQ(FdrDumpReason(d.header.reason), FdrDumpReason::kSignal);
  ASSERT_EQ(d.events.size(), 3u);  // step + health + dump marker
  EXPECT_EQ(FdrKind(d.events[0].kind), FdrKind::kStep);
  EXPECT_EQ(d.events[0].step, 7);
  EXPECT_EQ(FdrKind(d.events[1].kind), FdrKind::kHealth);
  EXPECT_EQ(d.events[1].code, 1);
  EXPECT_EQ(FdrKind(d.events[2].kind), FdrKind::kDump);
  EXPECT_EQ(d.events[2].code, std::uint16_t(FdrDumpReason::kSignal));
  std::remove(path.c_str());
}

}  // namespace
