#include "telemetry/metrics.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace minivpic::telemetry {
namespace {

TEST(CounterTest, Accumulates) {
  Counter c;
  c.add(2.0);
  c.add(0.5);
  EXPECT_DOUBLE_EQ(c.value(), 2.5);
  c.reset();
  EXPECT_DOUBLE_EQ(c.value(), 0.0);
}

TEST(HistogramTest, BinningAndStats) {
  MetricHistogram h(0.0, 10.0, 10);
  h.add(0.5);   // bin 0
  h.add(9.5);   // bin 9
  h.add(-1.0);  // underflow
  h.add(10.0);  // hi is exclusive: overflow
  h.add(42.0);  // overflow
  EXPECT_DOUBLE_EQ(h.count(0), 1.0);
  EXPECT_DOUBLE_EQ(h.count(9), 1.0);
  EXPECT_DOUBLE_EQ(h.underflow(), 1.0);
  EXPECT_DOUBLE_EQ(h.overflow(), 2.0);
  EXPECT_DOUBLE_EQ(h.total_count(), 5.0);
  EXPECT_DOUBLE_EQ(h.min(), -1.0);
  EXPECT_DOUBLE_EQ(h.max(), 42.0);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 9.5 - 1.0 + 10.0 + 42.0);
}

TEST(HistogramTest, EmptyStatsAreZero) {
  MetricHistogram h(0.0, 1.0, 4);
  EXPECT_DOUBLE_EQ(h.total_count(), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
}

TEST(HistogramTest, WeightedAdds) {
  MetricHistogram h(0.0, 4.0, 4);
  h.add(1.5, 3.0);
  EXPECT_DOUBLE_EQ(h.count(1), 3.0);
  EXPECT_DOUBLE_EQ(h.total_count(), 3.0);
  EXPECT_DOUBLE_EQ(h.sum(), 4.5);
}

TEST(HistogramTest, QuantileInterpolates) {
  MetricHistogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  // Uniform fill: the q-quantile is ~100q.
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.0);
  EXPECT_NEAR(h.quantile(0.9), 90.0, 1.0);
  EXPECT_LE(h.quantile(0.0), h.quantile(1.0));
}

TEST(HistogramTest, MergeRequiresSameShape) {
  MetricHistogram a(0.0, 1.0, 4);
  MetricHistogram b(0.0, 1.0, 8);
  MetricHistogram c(0.0, 2.0, 4);
  EXPECT_THROW(a.merge(b), Error);
  EXPECT_THROW(a.merge(c), Error);
}

/// The distributed-reduction property: merging per-shard histograms in any
/// grouping gives the identical result (associativity + commutativity).
TEST(HistogramTest, MergeIsAssociative) {
  Rng rng(7);
  auto make_shard = [&](int n) {
    MetricHistogram h(0.0, 1.0, 16);
    for (int i = 0; i < n; ++i) h.add(rng.uniform(-0.1, 1.1));
    return h;
  };
  const MetricHistogram s0 = make_shard(100);
  const MetricHistogram s1 = make_shard(57);
  const MetricHistogram s2 = make_shard(231);

  // (s0 + s1) + s2
  MetricHistogram left = s0;
  left.merge(s1);
  left.merge(s2);
  // s0 + (s2 + s1)  — different grouping AND order
  MetricHistogram inner = s2;
  inner.merge(s1);
  MetricHistogram right = s0;
  right.merge(inner);

  ASSERT_EQ(left.num_bins(), right.num_bins());
  for (std::size_t i = 0; i < left.num_bins(); ++i)
    EXPECT_DOUBLE_EQ(left.count(i), right.count(i)) << "bin " << i;
  EXPECT_DOUBLE_EQ(left.underflow(), right.underflow());
  EXPECT_DOUBLE_EQ(left.overflow(), right.overflow());
  EXPECT_DOUBLE_EQ(left.total_count(), right.total_count());
  EXPECT_DOUBLE_EQ(left.sum(), right.sum());
  EXPECT_DOUBLE_EQ(left.min(), right.min());
  EXPECT_DOUBLE_EQ(left.max(), right.max());
}

TEST(RegistryTest, ScalarsPreserveRegistrationOrder) {
  MetricsRegistry reg;
  reg.counter("pushed", "count").add(10);
  reg.gauge("rate", "1/s").set(2.5);
  reg.histogram("lap", 0.0, 1.0, 4, "s").add(0.3);
  const auto scalars = reg.scalars();
  ASSERT_EQ(scalars.size(), 6u);  // counter + gauge + 4 histogram scalars
  EXPECT_EQ(scalars[0].name, "pushed");
  EXPECT_DOUBLE_EQ(scalars[0].value, 10.0);
  EXPECT_EQ(scalars[1].name, "rate");
  EXPECT_EQ(scalars[1].unit, "1/s");
  EXPECT_EQ(scalars[2].name, "lap.count");
  EXPECT_EQ(scalars[3].name, "lap.sum");
  EXPECT_EQ(scalars[4].name, "lap.min");
  EXPECT_EQ(scalars[5].name, "lap.max");
}

TEST(RegistryTest, SameNameSameKindReturnsSameInstance) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x");
  Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  a.add(1);
  EXPECT_DOUBLE_EQ(b.value(), 1.0);
}

TEST(RegistryTest, KindClashThrows) {
  MetricsRegistry reg;
  reg.counter("x");
  EXPECT_THROW(reg.gauge("x"), Error);
  EXPECT_THROW(reg.histogram("x", 0, 1, 4), Error);
  EXPECT_EQ(reg.find_histogram("x"), nullptr);
}

}  // namespace
}  // namespace minivpic::telemetry
