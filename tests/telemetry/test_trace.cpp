#include "telemetry/trace.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <sstream>
#include <thread>
#include <vector>

namespace minivpic::telemetry {
namespace {

std::string temp_path(const char* tag) {
  return ::testing::TempDir() + "/minivpic_trace_" + tag + ".json";
}

Json load_trace(const std::string& path) {
  std::ifstream is(path);
  EXPECT_TRUE(is.good()) << path;
  std::ostringstream buf;
  buf << is.rdbuf();
  return Json::parse(buf.str());
}

TEST(TraceWriterTest, NullWriterSpansAreNoops) {
  // The disabled-sink path used on every un-traced run.
  ScopedSpan a(nullptr, "anything");
  ScopedSpan b(nullptr, "nested");
  SUCCEED();
}

TEST(TraceWriterTest, WritesWellFormedDocument) {
  const std::string path = temp_path("basic");
  {
    TraceWriter w(path, /*pid=*/3);
    {
      ScopedSpan step(&w, "step");
      ScopedSpan push(&w, "push");
    }
    Json args = Json::object();
    args.set("step", Json::number(std::int64_t{7}));
    w.instant("health.fault", "health", std::move(args));
    EXPECT_EQ(w.num_events(), 5u);  // 2 B + 2 E + 1 i
  }  // destructor closes
  const Json doc = load_trace(path);
  const Json& events = doc.at("traceEvents");
  ASSERT_EQ(events.size(), 5u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    const Json& e = events.at(i);
    EXPECT_DOUBLE_EQ(e.at("pid").as_number(), 3.0);
    e.at("tid").as_number();
    EXPECT_GE(e.at("ts").as_number(), 0.0);
  }
  // Instant events carry their args and scope marker.
  bool saw_instant = false;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const Json& e = events.at(i);
    if (e.at("ph").as_string() == "i") {
      saw_instant = true;
      EXPECT_EQ(e.at("name").as_string(), "health.fault");
      EXPECT_EQ(e.at("cat").as_string(), "health");
      EXPECT_DOUBLE_EQ(e.at("args").at("step").as_number(), 7.0);
    }
  }
  EXPECT_TRUE(saw_instant);
}

TEST(TraceWriterTest, SpansBalancePerThread) {
  const std::string path = temp_path("threads");
  {
    TraceWriter w(path, 0);
    auto worker = [&w](int laps) {
      for (int i = 0; i < laps; ++i) {
        ScopedSpan outer(&w, "outer");
        ScopedSpan inner(&w, "inner");
      }
    };
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) threads.emplace_back(worker, 5 + t);
    for (auto& th : threads) th.join();
    w.close();
  }
  const Json doc = load_trace(path);
  const Json& events = doc.at("traceEvents");
  // Per-tid B/E stacks must balance and timestamps must be monotonic.
  std::map<int, int> depth;
  std::map<int, double> last_ts;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const Json& e = events.at(i);
    const int tid = int(e.at("tid").as_number());
    const double ts = e.at("ts").as_number();
    if (last_ts.count(tid)) {
      EXPECT_GE(ts, last_ts[tid]);
    }
    last_ts[tid] = ts;
    const std::string& ph = e.at("ph").as_string();
    if (ph == "B") ++depth[tid];
    if (ph == "E") {
      --depth[tid];
      EXPECT_GE(depth[tid], 0);
    }
  }
  for (const auto& [tid, d] : depth) EXPECT_EQ(d, 0) << "tid " << tid;
  EXPECT_EQ(depth.size(), 4u);  // one track per worker thread
}

TEST(TraceWriterTest, CloseIsIdempotent) {
  const std::string path = temp_path("idempotent");
  TraceWriter w(path, 0);
  { ScopedSpan s(&w, "only"); }
  w.close();
  w.close();  // second close must not rewrite or throw
  const Json doc = load_trace(path);
  EXPECT_EQ(doc.at("traceEvents").size(), 2u);
}

}  // namespace
}  // namespace minivpic::telemetry
