#include "fft/fft.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace minivpic::fft {
namespace {

using cplx = std::complex<double>;

TEST(Fft, RejectsNonPow2) {
  std::vector<cplx> v(3);
  EXPECT_THROW(transform(v), minivpic::Error);
  std::vector<cplx> empty;
  EXPECT_THROW(transform(empty), minivpic::Error);
}

TEST(Fft, LengthOneIsIdentity) {
  std::vector<cplx> v{{2.0, -1.0}};
  transform(v);
  EXPECT_DOUBLE_EQ(v[0].real(), 2.0);
  EXPECT_DOUBLE_EQ(v[0].imag(), -1.0);
}

TEST(Fft, DeltaTransformsToFlat) {
  std::vector<cplx> v(8, {0.0, 0.0});
  v[0] = {1.0, 0.0};
  transform(v);
  for (const auto& x : v) {
    EXPECT_NEAR(x.real(), 1.0, 1e-12);
    EXPECT_NEAR(x.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, ConstantTransformsToDelta) {
  std::vector<cplx> v(16, {1.0, 0.0});
  transform(v);
  EXPECT_NEAR(v[0].real(), 16.0, 1e-12);
  for (std::size_t k = 1; k < v.size(); ++k) EXPECT_NEAR(std::abs(v[k]), 0.0, 1e-12);
}

TEST(Fft, SingleToneLandsInRightBin) {
  const std::size_t n = 64;
  const std::size_t k0 = 5;
  std::vector<cplx> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double ph = 2.0 * std::numbers::pi * double(k0 * i) / double(n);
    v[i] = {std::cos(ph), 0.0};
  }
  transform(v);
  // Real cosine: power split between bins k0 and n-k0.
  EXPECT_NEAR(std::abs(v[k0]), n / 2.0, 1e-9);
  EXPECT_NEAR(std::abs(v[n - k0]), n / 2.0, 1e-9);
  for (std::size_t k = 0; k < n; ++k) {
    if (k != k0 && k != n - k0) EXPECT_NEAR(std::abs(v[k]), 0.0, 1e-9);
  }
}

class FftRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftRoundTrip, ForwardInverseIsIdentity) {
  const std::size_t n = GetParam();
  minivpic::Rng rng(n);
  std::vector<cplx> v(n), orig;
  for (auto& x : v) x = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  orig = v;
  transform(v, false);
  transform(v, true);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(v[i].real(), orig[i].real(), 1e-10);
    EXPECT_NEAR(v[i].imag(), orig[i].imag(), 1e-10);
  }
}

TEST_P(FftRoundTrip, ParsevalHolds) {
  const std::size_t n = GetParam();
  minivpic::Rng rng(n + 100);
  std::vector<cplx> v(n);
  double time_energy = 0;
  for (auto& x : v) {
    x = {rng.normal(), rng.normal()};
    time_energy += std::norm(x);
  }
  transform(v);
  double freq_energy = 0;
  for (const auto& x : v) freq_energy += std::norm(x);
  EXPECT_NEAR(freq_energy / double(n), time_energy, 1e-8 * time_energy);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftRoundTrip,
                         ::testing::Values(1u, 2u, 4u, 8u, 64u, 256u, 1024u));

TEST(RealSpectrum, PadsToPow2) {
  std::vector<double> v(100, 1.0);
  const auto spec = real_spectrum(v);
  EXPECT_EQ(spec.size(), 128u);
}

TEST(RealSpectrum, EmptyThrows) {
  std::vector<double> v;
  EXPECT_THROW(real_spectrum(v), minivpic::Error);
}

TEST(PowerSpectrum, OneSidedSize) {
  std::vector<double> v(64, 0.0);
  EXPECT_EQ(power_spectrum(v).size(), 33u);
}

TEST(PowerSpectrum, FindsDominantFrequency) {
  // Sampled sine at omega = 2*pi*10/(n*dt).
  const std::size_t n = 256;
  const double dt = 0.1;
  std::vector<double> v(n);
  const double omega = bin_omega(10, n, dt);
  for (std::size_t i = 0; i < n; ++i) v[i] = std::sin(omega * double(i) * dt);
  const auto power = power_spectrum(v);
  EXPECT_EQ(peak_bin(power, 1, power.size()), 10u);
}

TEST(PeakBin, WindowRespected) {
  std::vector<double> p{0.0, 5.0, 1.0, 9.0, 2.0};
  EXPECT_EQ(peak_bin(p, 0, 5), 3u);
  EXPECT_EQ(peak_bin(p, 0, 3), 1u);
  EXPECT_THROW(peak_bin(p, 3, 3), minivpic::Error);
  EXPECT_THROW(peak_bin(p, 0, 6), minivpic::Error);
}

TEST(BinOmega, Formula) {
  EXPECT_NEAR(bin_omega(1, 100, 0.5), 2.0 * std::numbers::pi / 50.0, 1e-14);
  EXPECT_THROW(bin_omega(1, 0, 0.5), minivpic::Error);
  EXPECT_THROW(bin_omega(1, 8, 0.0), minivpic::Error);
}

TEST(Fft, LinearityProperty) {
  minivpic::Rng rng(7);
  const std::size_t n = 32;
  std::vector<cplx> a(n), b(n), sum(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = {rng.normal(), rng.normal()};
    b[i] = {rng.normal(), rng.normal()};
    sum[i] = 2.0 * a[i] + 3.0 * b[i];
  }
  transform(a);
  transform(b);
  transform(sum);
  for (std::size_t k = 0; k < n; ++k) {
    const cplx expect = 2.0 * a[k] + 3.0 * b[k];
    EXPECT_NEAR(std::abs(sum[k] - expect), 0.0, 1e-9);
  }
}

}  // namespace
}  // namespace minivpic::fft
