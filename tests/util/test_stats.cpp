#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace minivpic {
namespace {

TEST(RunningStats, Empty) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownValues) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(RunningStats, MatchesDirectComputation) {
  Rng rng(1);
  RunningStats s;
  std::vector<double> xs;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(2.0, 3.0);
    xs.push_back(x);
    s.add(x);
  }
  double mean = 0;
  for (double x : xs) mean += x;
  mean /= xs.size();
  double var = 0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= (xs.size() - 1);
  EXPECT_NEAR(s.mean(), mean, 1e-10);
  EXPECT_NEAR(s.variance(), var, 1e-8);
}

TEST(Histogram, BinsAndEdges) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.0);    // bin 0
  h.add(0.999);  // bin 0
  h.add(1.0);    // bin 1
  h.add(9.999);  // bin 9
  EXPECT_DOUBLE_EQ(h.count(0), 2.0);
  EXPECT_DOUBLE_EQ(h.count(1), 1.0);
  EXPECT_DOUBLE_EQ(h.count(9), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(9), 10.0);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 0.5);
}

TEST(Histogram, OutOfRangeCounted) {
  Histogram h(0.0, 1.0, 4);
  h.add(-0.5);
  h.add(1.5);
  h.add(0.5);
  EXPECT_DOUBLE_EQ(h.underflow(), 1.0);
  EXPECT_DOUBLE_EQ(h.overflow(), 1.0);
  EXPECT_DOUBLE_EQ(h.total(), 3.0);
}

TEST(Histogram, ClampEdges) {
  Histogram h(0.0, 1.0, 4, /*clamp_edges=*/true);
  h.add(-0.5);
  h.add(1.5);
  EXPECT_DOUBLE_EQ(h.count(0), 1.0);
  EXPECT_DOUBLE_EQ(h.count(3), 1.0);
  EXPECT_DOUBLE_EQ(h.underflow(), 0.0);
}

TEST(Histogram, Weighted) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.25, 2.5);
  h.add(0.75, 0.5);
  EXPECT_DOUBLE_EQ(h.count(0), 2.5);
  EXPECT_DOUBLE_EQ(h.count(1), 0.5);
}

TEST(Histogram, BadRangeThrows) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), Error);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), Error);
}

TEST(LinearFitTest, ExactLine) {
  std::vector<double> x{0, 1, 2, 3, 4};
  std::vector<double> y{1, 3, 5, 7, 9};  // y = 1 + 2x
  const auto fit = fit_line(x, y);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(LinearFitTest, NoisyLine) {
  Rng rng(2);
  std::vector<double> x, y;
  for (int i = 0; i < 500; ++i) {
    x.push_back(i * 0.01);
    y.push_back(-2.0 + 0.5 * x.back() + rng.normal(0.0, 0.01));
  }
  const auto fit = fit_line(x, y);
  EXPECT_NEAR(fit.slope, 0.5, 0.02);
  EXPECT_NEAR(fit.intercept, -2.0, 0.01);
  EXPECT_GT(fit.r2, 0.9);
}

TEST(LinearFitTest, RequiresTwoPoints) {
  std::vector<double> one{1.0};
  EXPECT_THROW(fit_line(one, one), Error);
}

TEST(LinearFitTest, MismatchedSpansThrow) {
  std::vector<double> x{1, 2};
  std::vector<double> y{1, 2, 3};
  EXPECT_THROW(fit_line(x, y), Error);
}

TEST(GrowthFit, RecoversRate) {
  // y = 0.1 * exp(0.3 t)
  std::vector<double> t, y;
  for (int i = 0; i < 100; ++i) {
    t.push_back(i * 0.1);
    y.push_back(0.1 * std::exp(0.3 * t.back()));
  }
  const auto fit = fit_exponential_growth(t, y, 10, 90);
  EXPECT_NEAR(fit.slope, 0.3, 1e-10);
}

TEST(GrowthFit, SkipsNonPositive) {
  std::vector<double> t{0, 1, 2, 3, 4};
  std::vector<double> y{0.0, std::exp(1.0), -1.0, std::exp(3.0), std::exp(4.0)};
  const auto fit = fit_exponential_growth(t, y, 0, 5);
  EXPECT_NEAR(fit.slope, 1.0, 1e-10);
}

TEST(GrowthFit, BadWindowThrows) {
  std::vector<double> t{0, 1};
  std::vector<double> y{1, 2};
  EXPECT_THROW(fit_exponential_growth(t, y, 1, 1), Error);
  EXPECT_THROW(fit_exponential_growth(t, y, 0, 3), Error);
}

}  // namespace
}  // namespace minivpic
