#include "util/math.hpp"

#include <gtest/gtest.h>

namespace minivpic {
namespace {

TEST(Math, Ipow) {
  EXPECT_EQ(ipow(2, 0u), 1);
  EXPECT_EQ(ipow(2, 10u), 1024);
  EXPECT_EQ(ipow(3, 4u), 81);
  EXPECT_EQ(ipow(10LL, 12u), 1000000000000LL);
  static_assert(ipow(5, 3u) == 125);
}

TEST(Math, RoundUp) {
  EXPECT_EQ(round_up(0, 8), 0);
  EXPECT_EQ(round_up(1, 8), 8);
  EXPECT_EQ(round_up(8, 8), 8);
  EXPECT_EQ(round_up(9, 8), 16);
}

TEST(Math, DivCeil) {
  EXPECT_EQ(div_ceil(0, 4), 0);
  EXPECT_EQ(div_ceil(1, 4), 1);
  EXPECT_EQ(div_ceil(4, 4), 1);
  EXPECT_EQ(div_ceil(5, 4), 2);
}

TEST(Math, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2(1ull << 40));
  EXPECT_FALSE(is_pow2((1ull << 40) + 1));
}

TEST(Math, NextPow2) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(1000), 1024u);
}

TEST(Math, Log2Pow2) {
  EXPECT_EQ(log2_pow2(1), 0u);
  EXPECT_EQ(log2_pow2(2), 1u);
  EXPECT_EQ(log2_pow2(1024), 10u);
}

TEST(Math, Clamp) {
  EXPECT_EQ(clamp(5, 0, 10), 5);
  EXPECT_EQ(clamp(-1, 0, 10), 0);
  EXPECT_EQ(clamp(11, 0, 10), 10);
  EXPECT_DOUBLE_EQ(clamp(0.5, 0.0, 1.0), 0.5);
}

TEST(Math, Lerp) {
  EXPECT_DOUBLE_EQ(lerp(0.0, 10.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(lerp(0.0, 10.0, 1.0), 10.0);
  EXPECT_DOUBLE_EQ(lerp(0.0, 10.0, 0.25), 2.5);
}

TEST(Math, GammaOfU) {
  EXPECT_DOUBLE_EQ(gamma_of_u(0, 0, 0), 1.0);
  EXPECT_DOUBLE_EQ(gamma_of_u(3, 0, 0), std::sqrt(10.0));
  // gamma grows with any component.
  EXPECT_GT(gamma_of_u(1, 1, 1), gamma_of_u(1, 1, 0));
}

TEST(Math, RelDiff) {
  EXPECT_DOUBLE_EQ(rel_diff(1.0, 1.0), 0.0);
  EXPECT_NEAR(rel_diff(1.0, 1.1), 0.1 / 1.1, 1e-12);
  EXPECT_DOUBLE_EQ(rel_diff(0.0, 0.0), 0.0);
}

}  // namespace
}  // namespace minivpic
