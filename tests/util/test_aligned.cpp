#include "util/aligned.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>

namespace minivpic {
namespace {

TEST(AlignedBuffer, DefaultIsEmpty) {
  AlignedBuffer<float> buf;
  EXPECT_EQ(buf.size(), 0u);
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.data(), nullptr);
}

TEST(AlignedBuffer, ZeroInitialized) {
  AlignedBuffer<double> buf(257);
  for (double v : buf) EXPECT_EQ(v, 0.0);
}

TEST(AlignedBuffer, DataIsAligned) {
  for (std::size_t n : {1u, 7u, 64u, 1000u}) {
    AlignedBuffer<float> buf(n);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) % kHotAlignment, 0u)
        << "n=" << n;
  }
}

TEST(AlignedBuffer, CustomAlignment) {
  AlignedBuffer<float> buf(3, 4096);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) % 4096, 0u);
}

TEST(AlignedBuffer, ElementAccess) {
  AlignedBuffer<int> buf(10);
  std::iota(buf.begin(), buf.end(), 0);
  for (std::size_t i = 0; i < buf.size(); ++i)
    EXPECT_EQ(buf[i], static_cast<int>(i));
}

TEST(AlignedBuffer, CopyIsDeep) {
  AlignedBuffer<int> a(4);
  std::iota(a.begin(), a.end(), 1);
  AlignedBuffer<int> b(a);
  ASSERT_EQ(b.size(), a.size());
  b[0] = 99;
  EXPECT_EQ(a[0], 1);
  EXPECT_EQ(b[1], a[1]);
}

TEST(AlignedBuffer, CopyAssign) {
  AlignedBuffer<int> a(4);
  std::iota(a.begin(), a.end(), 1);
  AlignedBuffer<int> b(2);
  b = a;
  ASSERT_EQ(b.size(), 4u);
  EXPECT_EQ(b[3], 4);
}

TEST(AlignedBuffer, MoveStealsStorage) {
  AlignedBuffer<int> a(4);
  a[2] = 7;
  const int* p = a.data();
  AlignedBuffer<int> b(std::move(a));
  EXPECT_EQ(b.data(), p);
  EXPECT_EQ(b[2], 7);
  EXPECT_EQ(a.data(), nullptr);  // NOLINT(bugprone-use-after-move)
}

TEST(AlignedBuffer, MoveAssignReleasesOld) {
  AlignedBuffer<int> a(4);
  a[0] = 5;
  AlignedBuffer<int> b(100);
  b = std::move(a);
  ASSERT_EQ(b.size(), 4u);
  EXPECT_EQ(b[0], 5);
}

TEST(AlignedBuffer, ZeroResets) {
  AlignedBuffer<float> buf(16);
  for (auto& v : buf) v = 3.5f;
  buf.zero();
  for (float v : buf) EXPECT_EQ(v, 0.0f);
}

TEST(AlignedBuffer, SpanViews) {
  AlignedBuffer<int> buf(8);
  auto s = buf.span();
  EXPECT_EQ(s.size(), 8u);
  s[3] = 42;
  EXPECT_EQ(buf[3], 42);
  const auto& cbuf = buf;
  EXPECT_EQ(cbuf.span()[3], 42);
}

TEST(AlignedBuffer, SelfAssignIsNoop) {
  AlignedBuffer<int> a(3);
  a[1] = 9;
  a = *&a;
  EXPECT_EQ(a[1], 9);
  EXPECT_EQ(a.size(), 3u);
}

}  // namespace
}  // namespace minivpic
