#include "util/timer.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

namespace minivpic {
namespace {

void spin(std::chrono::microseconds d) { std::this_thread::sleep_for(d); }

TEST(TimerTest, ElapsedIsNonNegativeAndMonotonic) {
  Timer t;
  const double a = t.seconds();
  EXPECT_GE(a, 0.0);
  spin(std::chrono::microseconds(200));
  const double b = t.seconds();
  EXPECT_GE(b, a);
}

TEST(TimerTest, ResetRestartsTheClock) {
  Timer t;
  spin(std::chrono::microseconds(500));
  EXPECT_GT(t.seconds(), 0.0);
  t.reset();
  // Freshly reset, the reading must be tiny compared with the pre-reset
  // sleep (steady_clock has sub-microsecond resolution everywhere we run).
  EXPECT_LT(t.seconds(), 400e-6);
}

TEST(StopwatchTest, StartsAtZero) {
  Stopwatch sw;
  EXPECT_EQ(sw.total_seconds(), 0.0);
  EXPECT_EQ(sw.laps(), 0u);
  EXPECT_EQ(sw.mean_seconds(), 0.0);
}

TEST(StopwatchTest, AccumulatesLaps) {
  Stopwatch sw;
  for (int i = 0; i < 3; ++i) {
    sw.start();
    spin(std::chrono::microseconds(100));
    sw.stop();
  }
  EXPECT_EQ(sw.laps(), 3u);
  EXPECT_GT(sw.total_seconds(), 0.0);
  EXPECT_NEAR(sw.mean_seconds(), sw.total_seconds() / 3.0, 1e-12);
}

TEST(StopwatchTest, StopWithoutStartIsIgnored) {
  Stopwatch sw;
  sw.stop();  // never started: must not record a lap
  EXPECT_EQ(sw.laps(), 0u);
  EXPECT_EQ(sw.total_seconds(), 0.0);
}

TEST(StopwatchTest, DoubleStopRecordsOneLap) {
  Stopwatch sw;
  sw.start();
  sw.stop();
  const double after_first = sw.total_seconds();
  sw.stop();  // second stop of the same lap: no-op
  EXPECT_EQ(sw.laps(), 1u);
  EXPECT_EQ(sw.total_seconds(), after_first);
}

TEST(StopwatchTest, RestartDropsTheOpenLap) {
  Stopwatch sw;
  sw.start();
  spin(std::chrono::microseconds(200));
  sw.start();  // restart: the first lap was never stopped, so never counted
  sw.stop();
  EXPECT_EQ(sw.laps(), 1u);
}

TEST(StopwatchTest, ResetClearsEverything) {
  Stopwatch sw;
  sw.start();
  sw.stop();
  sw.reset();
  EXPECT_EQ(sw.laps(), 0u);
  EXPECT_EQ(sw.total_seconds(), 0.0);
  // reset() while running must also forget the open lap.
  sw.start();
  sw.reset();
  sw.stop();
  EXPECT_EQ(sw.laps(), 0u);
}

TEST(ScopedLapTest, TimesTheScope) {
  Stopwatch sw;
  {
    ScopedLap lap(sw);
    spin(std::chrono::microseconds(100));
  }
  EXPECT_EQ(sw.laps(), 1u);
  EXPECT_GT(sw.total_seconds(), 0.0);
}

TEST(ScopedLapTest, NestedScopesAccumulate) {
  Stopwatch outer, inner;
  {
    ScopedLap a(outer);
    {
      ScopedLap b(inner);
      spin(std::chrono::microseconds(100));
    }
  }
  EXPECT_EQ(outer.laps(), 1u);
  EXPECT_EQ(inner.laps(), 1u);
  // The outer scope contains the inner one.
  EXPECT_GE(outer.total_seconds(), inner.total_seconds());
}

}  // namespace
}  // namespace minivpic
