#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace minivpic {
namespace {

TEST(Table, RequiresColumns) { EXPECT_THROW(Table({}), Error); }

TEST(Table, RowCellCountChecked) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({1.0}), Error);
  EXPECT_NO_THROW(t.add_row({1.0, 2.0}));
  EXPECT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.num_cols(), 2u);
}

TEST(Table, FormatVariants) {
  EXPECT_EQ(Table::format(Cell{std::string("x")}), "x");
  EXPECT_EQ(Table::format(Cell{2.5}), "2.5");
  EXPECT_EQ(Table::format(Cell{1234567LL}), "1234567");
}

TEST(Table, FormatDoubleUsesG) {
  EXPECT_EQ(Table::format(Cell{0.374e15}), "3.74e+14");
  EXPECT_EQ(Table::format(Cell{1.0}), "1");
}

TEST(Table, PrintAlignsColumns) {
  Table t({"name", "value"});
  t.add_row({std::string("alpha"), 1.5});
  t.add_row({std::string("b"), 22.0});
  std::ostringstream os;
  t.print(os, "demo");
  const std::string out = os.str();
  EXPECT_NE(out.find("== demo =="), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
  // Header separator row of dashes present.
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Table, CsvBasic) {
  Table t({"x", "y"});
  t.add_row({1.0, 2.0});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "x,y\n1,2\n");
}

TEST(Table, CsvEscapesSeparators) {
  Table t({"note"});
  t.add_row({std::string("a,b")});
  t.add_row({std::string("say \"hi\"")});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "note\n\"a,b\"\n\"say \"\"hi\"\"\"\n");
}

TEST(Table, CsvFileRoundTrip) {
  Table t({"k", "v"});
  t.add_row({std::string("n"), 5LL});
  const std::string path = ::testing::TempDir() + "/minivpic_test_table.csv";
  t.write_csv_file(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "k,v");
  std::getline(in, line);
  EXPECT_EQ(line, "n,5");
  std::remove(path.c_str());
}

TEST(Table, CsvFileBadPathThrows) {
  Table t({"x"});
  EXPECT_THROW(t.write_csv_file("/nonexistent_dir_xyz/t.csv"), Error);
}

TEST(Table, RowAccess) {
  Table t({"a"});
  t.add_row({3.0});
  EXPECT_DOUBLE_EQ(std::get<double>(t.row(0)[0]), 3.0);
}

}  // namespace
}  // namespace minivpic
