#include "util/cli.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace minivpic {
namespace {

Args make(std::initializer_list<const char*> argv_tail) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), argv_tail.begin(), argv_tail.end());
  return Args(static_cast<int>(argv.size()), argv.data());
}

TEST(Args, EqualsSyntax) {
  auto args = make({"--nx=32", "--name=run1"});
  EXPECT_EQ(args.get_int("nx", 0), 32);
  EXPECT_EQ(args.get("name", ""), "run1");
}

TEST(Args, SpaceSyntax) {
  auto args = make({"--nx", "64"});
  EXPECT_EQ(args.get_int("nx", 0), 64);
}

TEST(Args, BooleanFlag) {
  auto args = make({"--verbose"});
  EXPECT_TRUE(args.get_bool("verbose", false));
  EXPECT_FALSE(args.get_bool("quiet", false));
}

TEST(Args, BoolSpellings) {
  EXPECT_TRUE(make({"--a=yes"}).get_bool("a", false));
  EXPECT_TRUE(make({"--a=1"}).get_bool("a", false));
  EXPECT_TRUE(make({"--a=on"}).get_bool("a", false));
  EXPECT_FALSE(make({"--a=no"}).get_bool("a", true));
  EXPECT_FALSE(make({"--a=0"}).get_bool("a", true));
  EXPECT_FALSE(make({"--a=off"}).get_bool("a", true));
}

TEST(Args, BadBoolThrows) {
  EXPECT_THROW(make({"--a=maybe"}).get_bool("a", false), Error);
}

TEST(Args, Positional) {
  auto args = make({"input.deck", "--nx=8", "out.csv"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "input.deck");
  EXPECT_EQ(args.positional()[1], "out.csv");
}

TEST(Args, Fallbacks) {
  auto args = make({});
  EXPECT_EQ(args.get("missing", "dflt"), "dflt");
  EXPECT_EQ(args.get_int("missing", 7), 7);
  EXPECT_DOUBLE_EQ(args.get_double("missing", 2.5), 2.5);
}

TEST(Args, DoubleParsing) {
  auto args = make({"--a0=0.05", "--bad=xyz"});
  EXPECT_DOUBLE_EQ(args.get_double("a0", 0), 0.05);
  EXPECT_THROW(args.get_double("bad", 0), Error);
}

TEST(Args, IntParsing) {
  EXPECT_THROW(make({"--n=1.5"}).get_int("n", 0), Error);
  EXPECT_EQ(make({"--n=-4"}).get_int("n", 0), -4);
}

TEST(Args, Has) {
  auto args = make({"--x=1"});
  EXPECT_TRUE(args.has("x"));
  EXPECT_FALSE(args.has("y"));
}

TEST(Args, CheckKnownAccepts) {
  auto args = make({"--nx=1", "--ny=2"});
  EXPECT_NO_THROW(args.check_known({"nx", "ny", "nz"}));
}

TEST(Args, CheckKnownRejects) {
  auto args = make({"--oops=1"});
  EXPECT_THROW(args.check_known({"nx"}), Error);
}

TEST(Args, FlagFollowedByFlag) {
  auto args = make({"--a", "--b=2"});
  EXPECT_TRUE(args.get_bool("a", false));
  EXPECT_EQ(args.get_int("b", 0), 2);
}

}  // namespace
}  // namespace minivpic
