// util/simd.hpp primitives: every pack operation must round exactly like
// its scalar counterpart (the bit-parity foundation of the SIMD kernels,
// docs/KERNELS.md), and the transposed load/store must be an exact
// bit-preserving permutation — including for lanes carrying non-float bit
// patterns (the particle's int32 voxel column rides through transposes).
#include "util/simd.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "util/rng.hpp"

namespace minivpic::simd {
namespace {

template <int W>
class SimdPackTest : public ::testing::Test {};

// Native widths on x86 (4 always, 8/16 when compiled in — this test TU is
// built at the project's default arch, so 8/16 exercise the portable
// fallback there; the native 8/16 code paths are exercised end-to-end by
// the kernel equivalence tests and the CI arch matrix) plus a deliberately
// odd generic width.
using Widths =
    ::testing::Types<std::integral_constant<int, 1>,
                     std::integral_constant<int, 4>,
                     std::integral_constant<int, 8>,
                     std::integral_constant<int, 16>,
                     std::integral_constant<int, 3>>;

template <typename T>
class TypedSimdTest : public ::testing::Test {};
TYPED_TEST_SUITE(TypedSimdTest, Widths);

TYPED_TEST(TypedSimdTest, ArithmeticMatchesScalarBitwise) {
  constexpr int W = TypeParam::value;
  using P = pack<W>;
  Rng rng(7);
  float a[W], b[W], out[W];
  for (int trial = 0; trial < 50; ++trial) {
    for (int i = 0; i < W; ++i) {
      a[i] = float(rng.normal(0.0, 3.0));
      b[i] = float(rng.normal(0.5, 2.0));
    }
    const P pa = P::loadu(a), pb = P::loadu(b);

    (pa + pb).storeu(out);
    for (int i = 0; i < W; ++i) EXPECT_EQ(out[i], a[i] + b[i]);
    (pa - pb).storeu(out);
    for (int i = 0; i < W; ++i) EXPECT_EQ(out[i], a[i] - b[i]);
    (pa * pb).storeu(out);
    for (int i = 0; i < W; ++i) EXPECT_EQ(out[i], a[i] * b[i]);
    (pa / pb).storeu(out);
    for (int i = 0; i < W; ++i) EXPECT_EQ(out[i], a[i] / b[i]);
    (-pa).storeu(out);
    for (int i = 0; i < W; ++i) EXPECT_EQ(out[i], -a[i]);

    // sqrt of |a|: the hardware sqrt*ps instructions are IEEE
    // correctly-rounded, same as scalar sqrtss/std::sqrt.
    float abs_a[W];
    for (int i = 0; i < W; ++i) abs_a[i] = std::abs(a[i]);
    sqrt(P::loadu(abs_a)).storeu(out);
    for (int i = 0; i < W; ++i) EXPECT_EQ(out[i], std::sqrt(abs_a[i]));
  }
}

TYPED_TEST(TypedSimdTest, CompareSelectAndMaskBits) {
  constexpr int W = TypeParam::value;
  using P = pack<W>;
  Rng rng(11);
  float a[W], b[W], out[W];
  for (int trial = 0; trial < 50; ++trial) {
    for (int i = 0; i < W; ++i) {
      a[i] = float(rng.normal(0.0, 1.0));
      b[i] = float(rng.normal(0.0, 1.0));
    }
    const auto m = cmp_le(P::loadu(a), P::loadu(b));
    unsigned expect_bits = 0;
    for (int i = 0; i < W; ++i)
      expect_bits |= unsigned(a[i] <= b[i]) << i;
    EXPECT_EQ(m.bits(), expect_bits);
    EXPECT_EQ(m.bits() & ~all_lanes<W>(), 0u) << "stray high bits";

    select(m, P::loadu(a), P::loadu(b)).storeu(out);
    for (int i = 0; i < W; ++i)
      EXPECT_EQ(out[i], a[i] <= b[i] ? a[i] : b[i]);

    // Conjunction, as the kernel's six-face in-cell test uses it.
    const auto m2 = m & cmp_le(P::loadu(b), P::broadcast(0.0f));
    unsigned expect2 = 0;
    for (int i = 0; i < W; ++i)
      expect2 |= unsigned(a[i] <= b[i] && b[i] <= 0.0f) << i;
    EXPECT_EQ(m2.bits(), expect2);
  }
}

TYPED_TEST(TypedSimdTest, BroadcastZeroAndLane) {
  constexpr int W = TypeParam::value;
  using P = pack<W>;
  const P c = P::broadcast(2.5f);
  for (int i = 0; i < W; ++i) EXPECT_EQ(c.lane(i), 2.5f);
  const P z = P::zero();
  for (int i = 0; i < W; ++i) EXPECT_EQ(z.lane(i), 0.0f);
}

/// Round trip through load_tr at the particle layout (8 columns, stride 8)
/// must reproduce every bit — including a column holding int32 bit
/// patterns, some of which are not valid floats.
TYPED_TEST(TypedSimdTest, TransposeRoundTripParticleLayout) {
  constexpr int W = TypeParam::value;
  constexpr int kCols = 8;
  Rng rng(23);
  std::vector<float> src(std::size_t(W) * kCols), dst(src.size(), -1.0f);
  for (auto& x : src) x = float(rng.normal(0.0, 10.0));
  // Column 3 carries raw int32 voxel bits (including patterns that would be
  // denormal/NaN as floats) — transposes must not quiet or flush them.
  for (int w = 0; w < W; ++w) {
    const std::int32_t vox = 0x7f80'0001 ^ (w * 2654435761);
    std::memcpy(&src[std::size_t(w) * kCols + 3], &vox, 4);
  }
  std::int32_t off[W];
  for (int w = 0; w < W; ++w) off[w] = w * kCols;

  pack<W> cols[kCols];
  load_tr<W>(src.data(), off, kCols, cols);
  store_tr<W>(cols, kCols, dst.data(), off);
  for (std::size_t i = 0; i < src.size(); ++i) {
    std::uint32_t sb, db;
    std::memcpy(&sb, &src[i], 4);
    std::memcpy(&db, &dst[i], 4);
    EXPECT_EQ(sb, db) << "bit mismatch at flat index " << i;
  }

  // And the transposed view itself is correct: lane w of column c.
  for (int c = 0; c < kCols; ++c)
    for (int w = 0; w < W; ++w) {
      std::uint32_t sb, lb;
      const float lv = cols[c].lane(w);
      std::memcpy(&sb, &src[std::size_t(w) * kCols + c], 4);
      std::memcpy(&lb, &lv, 4);
      EXPECT_EQ(sb, lb) << "col " << c << " lane " << w;
    }
}

/// The interpolator fetch shape: 18 used columns at stride 20, rows picked
/// by an arbitrary (gather) offset per lane, including repeated rows.
TYPED_TEST(TypedSimdTest, TransposeGatherInterpolatorLayout) {
  constexpr int W = TypeParam::value;
  constexpr int kStride = 20;
  constexpr int kRows = 7;
  Rng rng(31);
  std::vector<float> src(std::size_t(kRows) * kStride);
  for (auto& x : src) x = float(rng.normal(0.0, 1.0));

  std::int32_t off[W];
  for (int w = 0; w < W; ++w)
    off[w] = std::int32_t(rng.uniform_u64(kRows)) * kStride;

  // Both the exact column count (gather widths) and the padded one (the
  // 4-wide block path reads the two pads as its last block).
  for (const int ncols : {18, kStride}) {
    pack<W> cols[kStride];
    load_tr<W>(src.data(), off, ncols, cols);
    for (int c = 0; c < ncols; ++c)
      for (int w = 0; w < W; ++w)
        EXPECT_EQ(cols[c].lane(w), src[std::size_t(off[w]) + c])
            << "ncols " << ncols << " col " << c << " lane " << w;
  }
}

/// store_tr to scattered rows (the per-lane deposit spill layout: 12
/// columns at stride 12).
TYPED_TEST(TypedSimdTest, TransposeScatterStore) {
  constexpr int W = TypeParam::value;
  constexpr int kCols = 12;
  Rng rng(41);
  float vals[kCols][W];
  pack<W> cols[kCols];
  for (int c = 0; c < kCols; ++c) {
    for (int w = 0; w < W; ++w) vals[c][w] = float(rng.normal(0.0, 1.0));
    cols[c] = pack<W>::loadu(vals[c]);
  }
  std::int32_t off[W];
  for (int w = 0; w < W; ++w) off[w] = w * kCols;
  std::vector<float> dst(std::size_t(W) * kCols, -7.0f);
  store_tr<W>(cols, kCols, dst.data(), off);
  for (int c = 0; c < kCols; ++c)
    for (int w = 0; w < W; ++w)
      EXPECT_EQ(dst[std::size_t(w) * kCols + c], vals[c][w]);
}

TEST(SimdArchTest, AllLanesMask) {
  EXPECT_EQ(all_lanes<1>(), 0x1u);
  EXPECT_EQ(all_lanes<4>(), 0xfu);
  EXPECT_EQ(all_lanes<8>(), 0xffu);
  EXPECT_EQ(all_lanes<16>(), 0xffffu);
}

}  // namespace
}  // namespace minivpic::simd
