#include "util/pipeline.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

namespace minivpic {
namespace {

TEST(PipelineTest, PartitionCoversRangeContiguously) {
  for (std::size_t count : {0u, 1u, 7u, 64u, 1000u, 1001u}) {
    for (int n : {1, 2, 3, 8, 13}) {
      std::size_t expect_begin = 0;
      for (int p = 0; p < n; ++p) {
        const auto r = Pipeline::partition(count, n, p);
        EXPECT_EQ(r.begin, expect_begin) << count << "/" << n << "/" << p;
        EXPECT_LE(r.begin, r.end);
        expect_begin = r.end;
      }
      EXPECT_EQ(expect_begin, count) << "slices must cover [0, count)";
    }
  }
}

TEST(PipelineTest, PartitionBalancedAndFrontLoaded) {
  // Slice sizes differ by at most one; earlier pipelines get the extras.
  const std::size_t count = 103;
  const int n = 8;
  std::size_t prev = Pipeline::partition(count, n, 0).size();
  for (int p = 1; p < n; ++p) {
    const std::size_t s = Pipeline::partition(count, n, p).size();
    EXPECT_LE(s, prev) << "later slices never larger";
    EXPECT_LE(prev - s, 1u) << "sizes differ by at most one";
    prev = s;
  }
}

TEST(PipelineTest, PartitionMorePipelinesThanItems) {
  // Surplus pipelines get empty (but valid) slices.
  const int n = 8;
  std::size_t covered = 0;
  for (int p = 0; p < n; ++p) {
    const auto r = Pipeline::partition(3, n, p);
    covered += r.size();
    EXPECT_LE(r.end, 3u);
  }
  EXPECT_EQ(covered, 3u);
}

TEST(PipelineTest, DispatchRunsEveryIndexOnce) {
  Pipeline pool(4);
  ASSERT_EQ(pool.size(), 4);
  std::vector<std::atomic<int>> hits(4);
  pool.dispatch([&](int p) { hits[std::size_t(p)]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(PipelineTest, PipelineZeroRunsOnCallingThread) {
  Pipeline pool(3);
  std::thread::id id0;
  std::set<std::thread::id> others;
  std::mutex mu;
  pool.dispatch([&](int p) {
    if (p == 0) {
      id0 = std::this_thread::get_id();
    } else {
      std::lock_guard<std::mutex> lock(mu);
      others.insert(std::this_thread::get_id());
    }
  });
  EXPECT_EQ(id0, std::this_thread::get_id());
  EXPECT_EQ(others.size(), 2u);
  EXPECT_EQ(others.count(id0), 0u);
}

TEST(PipelineTest, SerialPoolRunsInline) {
  Pipeline pool(1);
  EXPECT_EQ(pool.size(), 1);
  std::thread::id id;
  pool.dispatch([&](int p) {
    EXPECT_EQ(p, 0);
    id = std::this_thread::get_id();
  });
  EXPECT_EQ(id, std::this_thread::get_id());
}

TEST(PipelineTest, PoolIsReusableAcrossManyDispatches) {
  // Workers park between dispatches; repeated use must not deadlock or
  // lose jobs (generation-counter regression check).
  Pipeline pool(4);
  std::atomic<int> total{0};
  for (int step = 0; step < 200; ++step) {
    pool.dispatch([&](int) { total++; });
  }
  EXPECT_EQ(total.load(), 200 * 4);
}

TEST(PipelineTest, WorkerExceptionPropagatesToCaller) {
  Pipeline pool(4);
  auto boom = [](int p) {
    if (p == 2) throw std::runtime_error("pipeline 2 failed");
  };
  EXPECT_THROW(pool.dispatch(boom), std::runtime_error);
  // The pool survives a failed dispatch and keeps working.
  std::atomic<int> hits{0};
  pool.dispatch([&](int) { hits++; });
  EXPECT_EQ(hits.load(), 4);
}

TEST(PipelineTest, CallingThreadExceptionPropagates) {
  Pipeline pool(2);
  EXPECT_THROW(pool.dispatch([](int p) {
    if (p == 0) throw std::runtime_error("pipeline 0 failed");
  }),
               std::runtime_error);
  std::atomic<int> hits{0};
  pool.dispatch([&](int) { hits++; });
  EXPECT_EQ(hits.load(), 2);
}

TEST(PipelineTest, ConcurrentPipelinesShareWork) {
  // All pipelines of a dispatch are in flight together: each waits for all
  // others to arrive, which only terminates if they truly run concurrently.
  Pipeline pool(4);
  std::atomic<int> arrived{0};
  pool.dispatch([&](int) {
    arrived++;
    while (arrived.load() < 4) std::this_thread::yield();
  });
  EXPECT_EQ(arrived.load(), 4);
}

TEST(PipelineTest, ResolveAndHardwareCount) {
  EXPECT_GE(Pipeline::hardware_pipelines(), 1);
  EXPECT_EQ(Pipeline::resolve(1), 1);
  EXPECT_EQ(Pipeline::resolve(7), 7);
  EXPECT_EQ(Pipeline::resolve(0), Pipeline::hardware_pipelines());
  EXPECT_EQ(Pipeline::resolve(-3), Pipeline::hardware_pipelines());
}

TEST(PipelineTest, PartitionedSumMatchesSerial) {
  // The idiom the pusher relies on: per-pipeline partial work over a static
  // partition, folded in pipeline order, gives the serial answer.
  const std::size_t count = 12345;
  std::vector<double> items(count);
  for (std::size_t i = 0; i < count; ++i) items[i] = double(i % 97) * 0.25;
  double serial = 0;
  for (double v : items) serial += v;

  Pipeline pool(5);
  std::vector<double> partial(5, 0.0);
  pool.dispatch([&](int p) {
    const auto r = Pipeline::partition(count, 5, p);
    for (std::size_t i = r.begin; i < r.end; ++i)
      partial[std::size_t(p)] += items[i];
  });
  double folded = 0;
  for (double v : partial) folded += v;
  EXPECT_DOUBLE_EQ(folded, serial);
}

}  // namespace
}  // namespace minivpic
