#include "util/units.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"

namespace minivpic::units {
namespace {

TEST(Units, A0RoundTrip) {
  const double lambda = 0.527;  // the paper's frequency-doubled glass laser
  for (double intensity : {1e14, 1e15, 6e15, 1e16}) {
    const double a0 = a0_from_intensity(intensity, lambda);
    EXPECT_NEAR(intensity_from_a0(a0, lambda), intensity, intensity * 1e-12);
  }
}

TEST(Units, A0KnownValue) {
  // Standard benchmark: I = 1.37e18 W/cm^2 at 1 um gives a0 ~= 1.
  EXPECT_NEAR(a0_from_intensity(1.37e18, 1.0), 1.0, 0.01);
}

TEST(Units, A0ScalesAsSqrtIntensity) {
  const double a1 = a0_from_intensity(1e15, 0.5);
  const double a4 = a0_from_intensity(4e15, 0.5);
  EXPECT_NEAR(a4 / a1, 2.0, 1e-12);
}

TEST(Units, CriticalDensity) {
  // n_c(1 um) ~= 1.1e21 cm^-3.
  EXPECT_NEAR(critical_density_cm3(1.0), 1.115e21, 1e18);
  // Quadruples when wavelength halves.
  EXPECT_NEAR(critical_density_cm3(0.5) / critical_density_cm3(1.0), 4.0,
              1e-12);
}

TEST(Units, Omega0) {
  EXPECT_NEAR(omega0_over_omegape(0.25), 2.0, 1e-12);
  EXPECT_NEAR(omega0_over_omegape(0.1), std::sqrt(10.0), 1e-12);
  EXPECT_THROW(omega0_over_omegape(0.0), minivpic::Error);
  EXPECT_THROW(omega0_over_omegape(1.5), minivpic::Error);
}

TEST(Units, ThermalMomentum) {
  // 511 keV electrons: uth = 1.
  EXPECT_NEAR(uth_from_te_kev(kElectronRestKeV), 1.0, 1e-12);
  // Typical hohlraum Te ~ 2.6 keV -> uth ~ 0.071.
  EXPECT_NEAR(uth_from_te_kev(2.6), std::sqrt(2.6 / 510.99895), 1e-12);
}

TEST(Units, DebyeEqualsUth) {
  EXPECT_DOUBLE_EQ(debye_length_code(3.0), uth_from_te_kev(3.0));
}

TEST(Units, SrsKLambdaDePhysicalRegime) {
  // At n/n_c = 0.1 and Te in the hohlraum range the paper studies,
  // k lambda_De should land in the trapping-dominated regime ~0.25-0.45.
  const double klde = srs_k_lambda_de(0.1, 2.6);
  EXPECT_GT(klde, 0.2);
  EXPECT_LT(klde, 0.5);
}

TEST(Units, SrsRequiresUnderquarterCritical) {
  EXPECT_THROW(srs_k_lambda_de(0.3, 2.0), minivpic::Error);
  EXPECT_NO_THROW(srs_k_lambda_de(0.2, 2.0));
}

TEST(Units, SrsKGrowsWithDensityDecrease) {
  // Lower density -> larger omega0/omega_pe -> larger k_epw in code units.
  EXPECT_GT(srs_k_lambda_de(0.05, 2.0), srs_k_lambda_de(0.2, 2.0));
}

TEST(Units, InvalidInputs) {
  EXPECT_THROW(a0_from_intensity(-1.0, 1.0), minivpic::Error);
  EXPECT_THROW(a0_from_intensity(1e15, 0.0), minivpic::Error);
  EXPECT_THROW(critical_density_cm3(-0.5), minivpic::Error);
  EXPECT_THROW(uth_from_te_kev(-1.0), minivpic::Error);
}

}  // namespace
}  // namespace minivpic::units
