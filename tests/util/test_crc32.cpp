#include "util/crc32.hpp"

#include <gtest/gtest.h>

#include <string>

namespace minivpic {
namespace {

TEST(Crc32Test, KnownVectors) {
  // The canonical IEEE 802.3 check value.
  const std::string check = "123456789";
  EXPECT_EQ(Crc32::of(check.data(), check.size()), 0xCBF43926u);
  EXPECT_EQ(Crc32::of("", 0), 0x00000000u);
  const std::string a = "a";
  EXPECT_EQ(Crc32::of(a.data(), a.size()), 0xE8B7BE43u);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  const std::string data = "sectioned checkpoint payloads are streamed";
  Crc32 inc;
  inc.update(data.data(), 10);
  inc.update(data.data() + 10, data.size() - 10);
  EXPECT_EQ(inc.value(), Crc32::of(data.data(), data.size()));
}

TEST(Crc32Test, DetectsSingleBitFlip) {
  std::string data(1024, 'x');
  const std::uint32_t clean = Crc32::of(data.data(), data.size());
  data[512] = char(data[512] ^ 0x08);
  EXPECT_NE(Crc32::of(data.data(), data.size()), clean);
}

TEST(Crc32Test, ResetStartsFresh) {
  Crc32 c;
  c.update("junk", 4);
  c.reset();
  const std::string check = "123456789";
  c.update(check.data(), check.size());
  EXPECT_EQ(c.value(), 0xCBF43926u);
}

}  // namespace
}  // namespace minivpic
