#include "util/error.hpp"

#include <gtest/gtest.h>

#include <string>

namespace minivpic {
namespace {

TEST(Error, AssertPassesOnTrue) { EXPECT_NO_THROW(MV_ASSERT(1 + 1 == 2)); }

TEST(Error, AssertThrowsOnFalse) {
  EXPECT_THROW(MV_ASSERT(1 + 1 == 3), Error);
}

TEST(Error, AssertMessageContainsExpression) {
  try {
    MV_ASSERT(2 < 1);
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("2 < 1"), std::string::npos);
  }
}

TEST(Error, AssertMsgCarriesStreamedText) {
  try {
    MV_ASSERT_MSG(false, "value was " << 42);
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("value was 42"), std::string::npos);
  }
}

TEST(Error, RequireThrowsWithMessage) {
  try {
    MV_REQUIRE(false, "deck parameter nx must be positive, got " << -3);
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("nx must be positive"), std::string::npos);
    EXPECT_NE(what.find("-3"), std::string::npos);
  }
}

TEST(Error, RequirePasses) { EXPECT_NO_THROW(MV_REQUIRE(true, "ok")); }

TEST(Error, ErrorIsRuntimeError) {
  EXPECT_THROW(throw Error("x"), std::runtime_error);
}

TEST(Error, MessageIncludesLocation) {
  try {
    MV_ASSERT(false);
    FAIL();
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("test_error.cpp"), std::string::npos);
  }
}

}  // namespace
}  // namespace minivpic
