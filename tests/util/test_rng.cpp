#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace minivpic {
namespace {

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, SeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_EQ(same, 0);
}

TEST(Rng, StreamsAreIndependent) {
  Rng a(7, 0), b(7, 1);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_EQ(same, 0);
}

TEST(Rng, SeekGivesRandomAccess) {
  Rng a(9);
  std::vector<std::uint64_t> seq;
  for (int i = 0; i < 10; ++i) seq.push_back(a.next_u64());
  Rng b(9);
  b.seek(5);
  EXPECT_EQ(b.next_u64(), seq[5]);
  b.seek(0);
  EXPECT_EQ(b.next_u64(), seq[0]);
}

TEST(Rng, UniformInRange) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanAndVariance) {
  Rng rng(11);
  const int n = 200000;
  double sum = 0, sum2 = 0;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    sum += u;
    sum2 += u * u;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 5e-3);
  EXPECT_NEAR(var, 1.0 / 12.0, 5e-3);
}

TEST(Rng, UniformBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 7.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 7.0);
  }
}

TEST(Rng, UniformU64Range) {
  Rng rng(17);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_u64(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u) << "all 10 values should appear in 1000 draws";
}

TEST(Rng, NormalMoments) {
  Rng rng(23);
  const int n = 200000;
  double sum = 0, sum2 = 0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 1e-2);
  EXPECT_NEAR(sum2 / n, 1.0, 2e-2);
}

TEST(Rng, NormalShifted) {
  Rng rng(29);
  const int n = 100000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.normal(5.0, 0.1);
  EXPECT_NEAR(sum / n, 5.0, 1e-2);
}

TEST(Rng, ExponentialMean) {
  Rng rng(31);
  const int n = 100000;
  double sum = 0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.exponential();
    EXPECT_GT(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 1.0, 2e-2);
}

TEST(Rng, MaxwellianSpread) {
  Rng rng(37);
  const int n = 100000;
  const double uth = 0.05;
  double sum2 = 0;
  for (int i = 0; i < n; ++i) {
    const double u = rng.maxwellian(uth);
    sum2 += u * u;
  }
  EXPECT_NEAR(std::sqrt(sum2 / n), uth, uth * 0.02);
}

TEST(Rng, HashMixBijectiveSample) {
  // Distinct inputs must produce distinct outputs (spot check).
  std::set<std::uint64_t> outs;
  for (std::uint64_t i = 0; i < 10000; ++i) outs.insert(hash_mix(i));
  EXPECT_EQ(outs.size(), 10000u);
}

TEST(Rng, HashCombineOrderMatters) {
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
}

TEST(Rng, UrbgCompatibility) {
  // Usable with <random> distributions.
  Rng rng(41);
  EXPECT_EQ(Rng::min(), 0u);
  EXPECT_EQ(Rng::max(), ~std::uint64_t{0});
  EXPECT_NE(rng(), rng());
}

// Chi-squared uniformity sweep across several seeds.
class RngUniformity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngUniformity, ChiSquared) {
  Rng rng(GetParam());
  constexpr int kBins = 64;
  constexpr int kDraws = 64000;
  int counts[kBins] = {};
  for (int i = 0; i < kDraws; ++i)
    counts[static_cast<int>(rng.uniform() * kBins)]++;
  const double expected = double(kDraws) / kBins;
  double chi2 = 0;
  for (int c : counts) {
    const double d = c - expected;
    chi2 += d * d / expected;
  }
  // 63 dof: mean 63, stddev ~11.2; 5-sigma bound.
  EXPECT_LT(chi2, 63 + 5 * 11.2) << "seed=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngUniformity,
                         ::testing::Values(0u, 1u, 42u, 12345u, 0xDEADBEEFu));

}  // namespace
}  // namespace minivpic
