#include "baseline/baseline.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "grid/halo.hpp"
#include "util/error.hpp"

namespace minivpic::baseline {
namespace {

grid::GlobalGrid cube(int n, double h = 0.5) {
  grid::GlobalGrid g;
  g.nx = g.ny = g.nz = n;
  g.dx = g.dy = g.dz = h;
  return g;
}

void set_uniform(grid::FieldArray& f, float ex, float ey, float ez, float bx,
                 float by, float bz) {
  const auto& g = f.grid();
  for (int k = 0; k <= g.nz() + 1; ++k)
    for (int j = 0; j <= g.ny() + 1; ++j)
      for (int i = 0; i <= g.nx() + 1; ++i) {
        f.ex(i, j, k) = ex;
        f.ey(i, j, k) = ey;
        f.ez(i, j, k) = ez;
        f.cbx(i, j, k) = bx;
        f.cby(i, j, k) = by;
        f.cbz(i, j, k) = bz;
      }
}

TEST(BaselineTest, RequiresPeriodicSingleRank) {
  auto gg = cube(4);
  gg.boundary = grid::lpi_boundaries();
  const grid::LocalGrid g(gg);
  EXPECT_THROW(BaselinePic(g, -1.0, 1.0), Error);
  const grid::LocalGrid ok(cube(4));
  EXPECT_NO_THROW(BaselinePic(ok, -1.0, 1.0));
  EXPECT_THROW(BaselinePic(ok, -1.0, 0.0), Error);
}

TEST(BaselineTest, LoadCounts) {
  const grid::LocalGrid g(cube(4));
  BaselinePic pic(g, -1.0, 1.0);
  pic.load_uniform(8, 1.0, 0.05, 1);
  EXPECT_EQ(pic.size(), 8u * 64u);
  for (const auto& p : pic.particles()) {
    EXPECT_GE(p.x, g.node_x(1));
    EXPECT_LT(p.x, g.node_x(1) + 4 * 0.5);
  }
}

TEST(BaselineTest, UniformGatherExact) {
  const grid::LocalGrid g(cube(4));
  grid::FieldArray f(g);
  set_uniform(f, 1.0f, 2.0f, 3.0f, -1.0f, -2.0f, -3.0f);
  BaselinePic pic(g, -1.0, 1.0);
  const auto v = pic.gather(f, 0.7, 1.1, 1.9);
  EXPECT_NEAR(v.ex, 1.0, 1e-12);
  EXPECT_NEAR(v.ey, 2.0, 1e-12);
  EXPECT_NEAR(v.ez, 3.0, 1e-12);
  EXPECT_NEAR(v.cbx, -1.0, 1e-12);
  EXPECT_NEAR(v.cby, -2.0, 1e-12);
  EXPECT_NEAR(v.cbz, -3.0, 1e-12);
}

TEST(BaselineTest, GyrationConservesEnergy) {
  const grid::LocalGrid g(cube(8));
  grid::FieldArray f(g);
  set_uniform(f, 0, 0, 0, 0, 0, 0.2f);
  BaselinePic pic(g, -1.0, 1.0);
  ParticleD p;
  p.x = p.y = p.z = 2.0;
  p.ux = 0.3;
  p.w = 1e-10;
  pic.add(p);
  for (int s = 0; s < 1000; ++s) pic.push(f);
  const auto& q = pic.particles()[0];
  EXPECT_NEAR(q.ux * q.ux + q.uy * q.uy + q.uz * q.uz, 0.09, 1e-6);
}

TEST(BaselineTest, UniformEImpulse) {
  const grid::LocalGrid g(cube(8));
  grid::FieldArray f(g);
  set_uniform(f, 0.01f, 0, 0, 0, 0, 0);
  BaselinePic pic(g, -1.0, 1.0);
  ParticleD p;
  p.x = p.y = p.z = 2.0;
  p.w = 1e-10;
  pic.add(p);
  const int steps = 10;
  for (int s = 0; s < steps; ++s) pic.push(f);
  EXPECT_NEAR(pic.particles()[0].ux, -0.01 * g.dt() * steps, 1e-9);
}

TEST(BaselineTest, PeriodicWrapStaysInDomain) {
  const grid::LocalGrid g(cube(4));
  grid::FieldArray f(g);
  BaselinePic pic(g, -1.0, 1.0);
  ParticleD p;
  p.x = p.y = p.z = 1.9;
  p.ux = 5.0;
  p.uy = -5.0;
  p.w = 1e-10;
  pic.add(p);
  for (int s = 0; s < 50; ++s) pic.push(f);
  const auto& q = pic.particles()[0];
  EXPECT_GE(q.x, g.node_x(1));
  EXPECT_LT(q.x, g.node_x(1) + 2.0);
  EXPECT_GE(q.y, g.node_y(1));
  EXPECT_LT(q.y, g.node_y(1) + 2.0);
}

TEST(BaselineTest, DepositsCurrent) {
  const grid::LocalGrid g(cube(4));
  grid::FieldArray f(g);
  BaselinePic pic(g, -1.0, 1.0);
  ParticleD p;
  p.x = p.y = p.z = 1.0;
  p.ux = 0.5;
  p.w = 2.0;
  pic.add(p);
  pic.push(f);
  double total = 0;
  for (int k = 1; k <= 5; ++k)
    for (int j = 1; j <= 5; ++j)
      for (int i = 1; i <= 5; ++i) total += f.jfx(i, j, k);
  total *= g.cell_volume();
  const double v = 0.5 / std::sqrt(1.25);
  EXPECT_NEAR(total, -2.0 * v, 1e-5);
}

TEST(BaselineTest, KineticEnergy) {
  const grid::LocalGrid g(cube(4));
  BaselinePic pic(g, -1.0, 2.0);
  ParticleD p;
  p.ux = 3.0;
  p.w = 4.0;
  p.x = p.y = p.z = 1.0;
  pic.add(p);
  EXPECT_NEAR(pic.kinetic_energy(), 2.0 * 4.0 * (std::sqrt(10.0) - 1.0), 1e-9);
}

}  // namespace
}  // namespace minivpic::baseline
